//! The leader automaton (the paper's leader protocol, phases 1–3).
//!
//! A [`Leader`] incarnation is created when leader election (Phase 0)
//! nominates this process. It then:
//!
//! 1. **Discovery** — collects `FOLLOWERINFO` from a quorum, proposes
//!    `NEWEPOCH(e')` with `e'` greater than every accepted epoch it saw
//!    (durably adopting `e'` itself first), and collects a quorum of
//!    `ACKEPOCH`. If any follower reports a fresher history than the
//!    leader's own, the leader abdicates — ZooKeeper's Fast Leader Election
//!    elects the process with the freshest history precisely so that this
//!    never happens in the common case.
//! 2. **Synchronization** — for each follower, plans DIFF/TRUNC/SNAP
//!    against its last zxid, streams the plan followed by `NEWLEADER(e')`,
//!    and on a quorum of `ACKNEWLEADER` (counting its own durable epoch
//!    adoption) becomes **established**: it commits and delivers the
//!    initial history and activates synced followers with `UPTODATE`.
//! 3. **Broadcast** — assigns zxids `(e', counter)` to client requests,
//!    pipelines up to `max_outstanding` proposals, counts its own durable
//!    log append as an ack, and commits when a quorum acked. Commit
//!    messages carry a cumulative watermark.
//!
//! Followers that arrive late (or reconnect) at any point are taken through
//! their own discovery/synchronization and then activated; proposals and
//! commits generated while a follower is syncing are queued per peer and
//! flushed after `UPTODATE`, preserving the FIFO order the protocol needs.

use crate::config::ClusterConfig;
use crate::delivery::deliver_committed;
use crate::events::{Action, Input, PersistRequest, PersistToken, PersistentState, RejectReason};
use crate::history::{History, SyncPlan};
use crate::messages::Message;
use crate::metrics::CoreMetrics;
use crate::types::{Epoch, ServerId, Txn, Zxid};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use zab_trace::{Stage, Tracer};

/// Approximate payload-byte budget for a single sync-stream message.
///
/// A follower that has fallen far behind would otherwise receive its
/// entire missing history as one `SyncDiff`/`SyncTrunc`/`SyncSnap`,
/// whose encoded size grows without bound and can exceed any transport
/// frame limit. The leader instead splits the transaction tail into
/// chunks of at most this many payload bytes and streams them as
/// consecutive sync messages; the follower's sync path appends each
/// chunk in arrival order until `NEWLEADER` closes the stream, so the
/// split is invisible to the protocol.
const SYNC_CHUNK_BYTES: usize = 1 << 20;

/// Per-transaction overhead allowance (zxid + framing) when budgeting
/// sync chunks, so streams of tiny transactions still chunk sanely.
const SYNC_TXN_OVERHEAD: usize = 64;

/// Splits a sync transaction tail into bounded chunks. Always returns at
/// least one (possibly empty) chunk, because the first chunk rides inside
/// the plan's opening message (`SyncDiff`/`SyncTrunc`/`SyncSnap`).
fn sync_chunks(txns: Vec<Txn>) -> Vec<Vec<Txn>> {
    let mut chunks: Vec<Vec<Txn>> = vec![Vec::new()];
    let mut budget = 0usize;
    for txn in txns {
        let cost = txn.data.len() + SYNC_TXN_OVERHEAD;
        let current = chunks.last_mut().expect("chunks is never empty");
        if budget + cost > SYNC_CHUNK_BYTES && !current.is_empty() {
            chunks.push(vec![txn]);
            budget = cost;
        } else {
            current.push(txn);
            budget += cost;
        }
    }
    chunks
}

/// Externally visible leader phase, for tests and observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderStatus {
    /// Phase 1a: waiting for a quorum of `FOLLOWERINFO`.
    CollectingInfo,
    /// Phase 1b: `NEWEPOCH` proposed, waiting for a quorum of `ACKEPOCH`.
    CollectingAckEpoch,
    /// Phase 2: syncing followers, waiting for a quorum of `ACKNEWLEADER`.
    Establishing,
    /// Phase 3: established primary, broadcasting.
    Broadcasting,
    /// The incarnation ended; a new election is required.
    Defunct,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    CollectingInfo,
    /// `acceptedEpoch = e'` persist in flight; `NEWEPOCH` goes out after.
    PersistingEpoch,
    CollectingAckEpoch,
    Establishing,
    Broadcasting,
    Defunct,
}

/// Per-connected-follower state on the leader.
#[derive(Debug)]
enum PeerState {
    /// `FOLLOWERINFO` received; `NEWEPOCH` sent (or queued behind the
    /// epoch persist).
    InfoReceived { new_epoch_sent: bool },
    /// `ACKEPOCH` received during Phase 1b; sync is planned when a quorum
    /// completes Phase 1.
    EpochAcked { last_zxid: Zxid },
    /// Needs a SNAP sync; waiting for the application snapshot.
    AwaitingSnapshot,
    /// Sync stream + `NEWLEADER` sent; traffic generated meanwhile is
    /// queued. `plan_end` is the history tail covered by the sync stream.
    Syncing { queue: Vec<Message>, plan_end: Zxid },
    /// Fully synced and activated; `acked` is its cumulative ack watermark.
    Active { acked: Zxid },
}

#[derive(Debug)]
struct Peer {
    state: PeerState,
    last_contact_ms: u64,
}

/// What a pending durability token completes.
#[derive(Debug)]
enum Pending {
    /// `acceptedEpoch = e'` persisted → send `NEWEPOCH` to peers.
    SendNewEpoch,
    /// `currentEpoch = e'` persisted → the leader's own `NEWLEADER` ack.
    EstablishSelf,
    /// A proposal appended durably → the leader's own proposal ack.
    SelfAck(Zxid),
}

/// The leader protocol automaton. Drive it with [`Leader::handle`].
#[derive(Debug)]
pub struct Leader {
    id: ServerId,
    config: ClusterConfig,
    accepted_epoch: Epoch,
    current_epoch: Epoch,
    history: History,
    delivered_to: Zxid,
    /// The leader's election-time vote `(currentEpoch, lastZxid)`; any
    /// follower reporting fresher forces abdication.
    self_vote: (Epoch, Zxid),
    /// The epoch being established / established (`e'`). Valid from
    /// `PersistingEpoch` onward.
    epoch: Epoch,
    phase: Phase,
    peers: BTreeMap<ServerId, Peer>,
    /// Phase-1a votes (`FOLLOWERINFO` senders, incl. self).
    info_votes: BTreeMap<ServerId, Epoch>,
    /// Phase-1b acks (`ACKEPOCH` senders, incl. self).
    ack_epoch: BTreeSet<ServerId>,
    /// Phase-2 acks (`ACKNEWLEADER` senders; self tracked separately).
    ack_ld: BTreeSet<ServerId>,
    /// True once our own `currentEpoch = e'` write is durable.
    self_established: bool,
    /// Zxid counter for the established epoch.
    counter: u32,
    /// Own durable log watermark (our implicit ack).
    self_acked: Zxid,
    /// Client requests not yet proposed (back-pressure beyond the window).
    pending_requests: VecDeque<Bytes>,
    /// Proposals in flight: proposed but not yet committed.
    outstanding: usize,
    /// True while a `TakeSnapshot` request is with the application.
    snapshot_pending: bool,
    now_ms: u64,
    started_ms: u64,
    last_ping_ms: u64,
    next_token: u64,
    pending: BTreeMap<PersistToken, Pending>,
    /// Instrument bundle (standalone by default; see [`Leader::set_metrics`]).
    metrics: CoreMetrics,
    /// Flight recorder handle (disabled by default; see
    /// [`Leader::set_tracer`]).
    tracer: Tracer,
    /// Propose time (driver ms) per in-flight own-epoch proposal, for the
    /// quorum-ack latency histogram. Bounded by the outstanding window and
    /// discarded with the incarnation.
    propose_times: BTreeMap<Zxid, u64>,
}

impl Leader {
    /// Creates a leader incarnation from recovered durable state and
    /// returns it with its initial actions. `applied_to` is the zxid the
    /// driver's application has already applied up to; delivery resumes
    /// after it.
    ///
    /// In a single-server ensemble the returned actions already complete
    /// Phase 1a (the leader's own info forms a quorum).
    pub fn new(
        id: ServerId,
        config: ClusterConfig,
        state: PersistentState,
        applied_to: Zxid,
        now_ms: u64,
    ) -> (Leader, Vec<Action>) {
        let delivered_to = applied_to.max(state.history.base());
        let self_vote = (state.current_epoch, state.history.last_zxid());
        let self_acked = state.history.last_zxid();
        let mut l = Leader {
            id,
            config,
            accepted_epoch: state.accepted_epoch,
            current_epoch: state.current_epoch,
            history: state.history,
            delivered_to,
            self_vote,
            epoch: Epoch::ZERO,
            phase: Phase::CollectingInfo,
            peers: BTreeMap::new(),
            info_votes: BTreeMap::new(),
            ack_epoch: BTreeSet::new(),
            ack_ld: BTreeSet::new(),
            self_established: false,
            counter: 0,
            self_acked,
            pending_requests: VecDeque::new(),
            outstanding: 0,
            snapshot_pending: false,
            now_ms,
            started_ms: now_ms,
            last_ping_ms: now_ms,
            next_token: 0,
            pending: BTreeMap::new(),
            metrics: CoreMetrics::standalone(),
            tracer: Tracer::disabled(),
            propose_times: BTreeMap::new(),
        };
        let mut out = Vec::new();
        l.info_votes.insert(id, l.accepted_epoch);
        l.maybe_finish_info_collection(&mut out);
        (l, out)
    }

    /// This leader's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Injects the instrument bundle this automaton records into,
    /// replacing the default standalone instruments. Call right after
    /// construction, before driving inputs.
    pub fn set_metrics(&mut self, metrics: CoreMetrics) {
        self.metrics = metrics;
    }

    /// Injects the flight-recorder handle this automaton records lifecycle
    /// events into (propose-enqueue, ack-rx, quorum, commit-out, deliver).
    /// Call right after construction, before driving inputs.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The epoch this leader is establishing or has established.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Current phase, for observability.
    pub fn status(&self) -> LeaderStatus {
        match self.phase {
            Phase::CollectingInfo | Phase::PersistingEpoch => LeaderStatus::CollectingInfo,
            Phase::CollectingAckEpoch => LeaderStatus::CollectingAckEpoch,
            Phase::Establishing => LeaderStatus::Establishing,
            Phase::Broadcasting => LeaderStatus::Broadcasting,
            Phase::Defunct => LeaderStatus::Defunct,
        }
    }

    /// True once established (phase 3).
    pub fn is_established(&self) -> bool {
        self.phase == Phase::Broadcasting
    }

    /// Tail of the accepted history.
    pub fn last_zxid(&self) -> Zxid {
        self.history.last_zxid()
    }

    /// Highest committed zxid.
    pub fn last_committed(&self) -> Zxid {
        self.history.last_committed()
    }

    /// Number of proposals in flight (proposed, not committed).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Number of client requests queued behind the outstanding window.
    pub fn queued_requests(&self) -> usize {
        self.pending_requests.len()
    }

    /// Followers currently active (synced and serving).
    pub fn active_followers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.peers.iter().filter_map(|(&id, p)| match p.state {
            PeerState::Active { .. } => Some(id),
            _ => None,
        })
    }

    /// Snapshot of the durable protocol state (what a driver would write).
    pub fn persistent_state(&self) -> PersistentState {
        PersistentState {
            accepted_epoch: self.accepted_epoch,
            current_epoch: self.current_epoch,
            history: self.history.clone(),
        }
    }

    fn token(&mut self, purpose: Pending) -> PersistToken {
        self.next_token += 1;
        let t = PersistToken(self.next_token);
        self.pending.insert(t, purpose);
        t
    }

    fn abdicate(&mut self, reason: &'static str, out: &mut Vec<Action>) {
        self.phase = Phase::Defunct;
        self.pending.clear();
        out.push(Action::GoToElection { reason });
    }

    /// Feeds one input to the automaton, returning the actions the driver
    /// must perform. After `GoToElection` is emitted, all further inputs
    /// return no actions.
    pub fn handle(&mut self, input: Input) -> Vec<Action> {
        let mut out = Vec::new();
        if self.phase == Phase::Defunct {
            return out;
        }
        match input {
            Input::Tick { now_ms } => self.on_tick(now_ms, &mut out),
            Input::Message { from, msg } => self.on_message(from, msg, &mut out),
            Input::Persisted { token } => self.on_persisted(token, &mut out),
            Input::ClientRequest { data } => self.on_client_request(data, &mut out),
            Input::SnapshotReady { snapshot, zxid } => {
                self.on_snapshot_ready(snapshot, zxid, &mut out)
            }
            Input::PeerDisconnected { peer } => {
                self.peers.remove(&peer);
                self.ack_ld.remove(&peer);
            }
            Input::Compact { through } => {
                let point = through.min(self.delivered_to);
                if point > self.history.base() {
                    self.history.purge_through(point);
                }
            }
        }
        out
    }

    fn on_tick(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        self.now_ms = now_ms;
        if self.phase != Phase::Broadcasting
            && now_ms.saturating_sub(self.started_ms) > self.config.establish_timeout_ms
        {
            self.abdicate("failed to establish in time", out);
            return;
        }
        if now_ms.saturating_sub(self.last_ping_ms) >= self.config.ping_interval_ms {
            self.last_ping_ms = now_ms;
            let last_committed = self.history.last_committed();
            for &id in self.peers.keys() {
                out.push(Action::Send { to: id, msg: Message::Ping { last_committed } });
            }
        }
        if self.phase == Phase::Broadcasting {
            let mut alive: BTreeSet<ServerId> = self
                .peers
                .iter()
                .filter(|(_, p)| {
                    now_ms.saturating_sub(p.last_contact_ms) <= self.config.leader_timeout_ms
                })
                .map(|(&id, _)| id)
                .collect();
            alive.insert(self.id);
            if !self.config.is_quorum(&alive) {
                self.abdicate("lost contact with a quorum", out);
            }
        }
    }

    fn on_message(&mut self, from: ServerId, msg: Message, out: &mut Vec<Action>) {
        if from == self.id || !self.config.quorum.members().contains(&from) {
            return;
        }
        if let Some(p) = self.peers.get_mut(&from) {
            p.last_contact_ms = self.now_ms;
        }
        match msg {
            Message::FollowerInfo { accepted_epoch, last_zxid } => {
                self.on_follower_info(from, accepted_epoch, last_zxid, out)
            }
            Message::AckEpoch { current_epoch, last_zxid } => {
                self.on_ack_epoch(from, current_epoch, last_zxid, out)
            }
            Message::AckNewLeader { epoch, last_zxid } => {
                self.on_ack_new_leader(from, epoch, last_zxid, out)
            }
            Message::Ack { zxid } => self.on_ack(from, zxid, out),
            Message::Pong { .. } => {
                // Contact timestamp already refreshed above.
            }
            // Messages a leader never receives from correct followers.
            _ => {
                // Drop silently: a reconnecting follower's stale traffic
                // may race its FOLLOWERINFO.
            }
        }
    }

    fn on_follower_info(
        &mut self,
        from: ServerId,
        accepted_epoch: Epoch,
        last_zxid: Zxid,
        out: &mut Vec<Action>,
    ) {
        // A (re)joining follower starts from a clean slate.
        self.ack_ld.remove(&from);
        match self.phase {
            Phase::CollectingInfo => {
                self.info_votes.insert(from, accepted_epoch);
                self.peers.insert(
                    from,
                    Peer {
                        state: PeerState::InfoReceived { new_epoch_sent: false },
                        last_contact_ms: self.now_ms,
                    },
                );
                self.maybe_finish_info_collection(out);
            }
            Phase::PersistingEpoch => {
                if accepted_epoch >= self.epoch {
                    self.abdicate("follower accepted an epoch at or above ours", out);
                    return;
                }
                self.peers.insert(
                    from,
                    Peer {
                        state: PeerState::InfoReceived { new_epoch_sent: false },
                        last_contact_ms: self.now_ms,
                    },
                );
            }
            Phase::CollectingAckEpoch | Phase::Establishing => {
                if accepted_epoch >= self.epoch {
                    self.abdicate("follower accepted an epoch at or above ours", out);
                    return;
                }
                self.peers.insert(
                    from,
                    Peer {
                        state: PeerState::InfoReceived { new_epoch_sent: true },
                        last_contact_ms: self.now_ms,
                    },
                );
                out.push(Action::Send { to: from, msg: Message::NewEpoch { epoch: self.epoch } });
            }
            Phase::Broadcasting => {
                if accepted_epoch > self.epoch {
                    self.abdicate("follower accepted a higher epoch", out);
                } else if accepted_epoch == self.epoch {
                    // Fast path: the follower already accepted our epoch
                    // (we are its unique established leader); skip straight
                    // to synchronization using the zxid it announced.
                    self.peers.insert(
                        from,
                        Peer {
                            state: PeerState::InfoReceived { new_epoch_sent: true },
                            last_contact_ms: self.now_ms,
                        },
                    );
                    self.start_sync(from, last_zxid, out);
                } else {
                    self.peers.insert(
                        from,
                        Peer {
                            state: PeerState::InfoReceived { new_epoch_sent: true },
                            last_contact_ms: self.now_ms,
                        },
                    );
                    out.push(Action::Send {
                        to: from,
                        msg: Message::NewEpoch { epoch: self.epoch },
                    });
                }
            }
            Phase::Defunct => {}
        }
    }

    /// Phase 1a completion check: with a quorum of infos, choose `e'` and
    /// durably adopt it before proposing.
    fn maybe_finish_info_collection(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::CollectingInfo {
            return;
        }
        let voters: BTreeSet<ServerId> = self.info_votes.keys().copied().collect();
        if !self.config.is_quorum(&voters) {
            return;
        }
        let max_accepted = self.info_votes.values().copied().max().unwrap_or(Epoch::ZERO);
        self.epoch = max_accepted.next();
        self.accepted_epoch = self.epoch;
        self.phase = Phase::PersistingEpoch;
        let token = self.token(Pending::SendNewEpoch);
        out.push(Action::Persist { token, req: PersistRequest::AcceptedEpoch(self.epoch) });
    }

    fn on_ack_epoch(
        &mut self,
        from: ServerId,
        current_epoch: Epoch,
        last_zxid: Zxid,
        out: &mut Vec<Action>,
    ) {
        match self.phase {
            Phase::CollectingAckEpoch | Phase::Establishing | Phase::Broadcasting => {}
            _ => return, // too early; stale traffic
        }
        let expected = matches!(
            self.peers.get(&from).map(|p| &p.state),
            Some(PeerState::InfoReceived { new_epoch_sent: true })
        );
        if !expected {
            return;
        }
        // Before establishment, the leader must own the freshest history
        // (FLE guarantees it); otherwise it steps down and lets the fresher
        // process win — adopting history mid-establishment would be the
        // paper's "leader adopts Ihistory" step, which ZooKeeper avoids by
        // electing the freshest process in the first place. Once
        // established, a follower with a longer-but-stale history is simply
        // truncated: our establishment quorum proves its surplus
        // transactions never committed.
        if self.phase != Phase::Broadcasting && (current_epoch, last_zxid) > self.self_vote {
            self.abdicate("a follower has a fresher history", out);
            return;
        }
        if current_epoch > self.epoch {
            self.abdicate("a follower adopted a higher epoch", out);
            return;
        }
        self.ack_epoch.insert(from);
        if self.phase == Phase::CollectingAckEpoch {
            // Park the peer with its zxid; syncs are planned when the
            // epoch-ack quorum completes.
            self.peers.get_mut(&from).expect("peer exists").state =
                PeerState::EpochAcked { last_zxid };
            self.maybe_begin_establishment(out);
            return;
        }
        // Established or establishing: sync this follower right away.
        self.start_sync(from, last_zxid, out);
    }

    /// Phase 1b completion check: with a quorum of epoch acks (self
    /// included — our info and epoch adoption count), begin Phase 2.
    fn maybe_begin_establishment(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::CollectingAckEpoch {
            return;
        }
        let mut ackers = self.ack_epoch.clone();
        ackers.insert(self.id);
        if !self.config.is_quorum(&ackers) {
            return;
        }
        self.phase = Phase::Establishing;
        self.current_epoch = self.epoch;
        let token = self.token(Pending::EstablishSelf);
        out.push(Action::Persist { token, req: PersistRequest::CurrentEpoch(self.epoch) });
        // Plan synchronization for every follower that acked the epoch.
        let parked: Vec<(ServerId, Zxid)> = self
            .peers
            .iter()
            .filter_map(|(&id, p)| match p.state {
                PeerState::EpochAcked { last_zxid } => Some((id, last_zxid)),
                _ => None,
            })
            .collect();
        for (id, lz) in parked {
            self.start_sync(id, lz, out);
        }
    }

    /// Phase 2 per-follower: plan DIFF/TRUNC/SNAP and stream it, ending
    /// with `NEWLEADER`.
    fn start_sync(&mut self, from: ServerId, follower_last: Zxid, out: &mut Vec<Action>) {
        let plan = self.history.plan_sync(follower_last, self.config.snap_threshold);
        match plan {
            SyncPlan::Snap => {
                self.peers.get_mut(&from).expect("peer exists").state = PeerState::AwaitingSnapshot;
                if !self.snapshot_pending {
                    self.snapshot_pending = true;
                    out.push(Action::TakeSnapshot);
                }
            }
            SyncPlan::Diff { txns } => {
                let mut chunks = sync_chunks(txns).into_iter();
                let first = chunks.next().expect("at least one chunk");
                out.push(Action::Send { to: from, msg: Message::SyncDiff { txns: first } });
                for chunk in chunks {
                    out.push(Action::Send { to: from, msg: Message::SyncDiff { txns: chunk } });
                }
                self.finish_sync_stream(from, out);
            }
            SyncPlan::Trunc { truncate_to, txns } => {
                let mut chunks = sync_chunks(txns).into_iter();
                let first = chunks.next().expect("at least one chunk");
                out.push(Action::Send {
                    to: from,
                    msg: Message::SyncTrunc { truncate_to, txns: first },
                });
                for chunk in chunks {
                    out.push(Action::Send { to: from, msg: Message::SyncDiff { txns: chunk } });
                }
                self.finish_sync_stream(from, out);
            }
        }
    }

    fn finish_sync_stream(&mut self, from: ServerId, out: &mut Vec<Action>) {
        out.push(Action::Send { to: from, msg: Message::NewLeader { epoch: self.epoch } });
        self.peers.get_mut(&from).expect("peer exists").state =
            PeerState::Syncing { queue: Vec::new(), plan_end: self.history.last_zxid() };
    }

    fn on_snapshot_ready(&mut self, snapshot: Bytes, zxid: Zxid, out: &mut Vec<Action>) {
        self.snapshot_pending = false;
        let waiting: Vec<ServerId> = self
            .peers
            .iter()
            .filter_map(|(&id, p)| match p.state {
                PeerState::AwaitingSnapshot => Some(id),
                _ => None,
            })
            .collect();
        for id in waiting {
            let mut chunks = sync_chunks(self.history.txns_after(zxid).to_vec()).into_iter();
            let first = chunks.next().expect("at least one chunk");
            out.push(Action::Send {
                to: id,
                msg: Message::SyncSnap {
                    snapshot: snapshot.clone(),
                    snapshot_zxid: zxid,
                    txns: first,
                },
            });
            for chunk in chunks {
                out.push(Action::Send { to: id, msg: Message::SyncDiff { txns: chunk } });
            }
            self.finish_sync_stream(id, out);
        }
    }

    fn on_ack_new_leader(
        &mut self,
        from: ServerId,
        epoch: Epoch,
        last_zxid: Zxid,
        out: &mut Vec<Action>,
    ) {
        if epoch != self.epoch {
            return;
        }
        let syncing =
            matches!(self.peers.get(&from).map(|p| &p.state), Some(PeerState::Syncing { .. }));
        if !syncing {
            return;
        }
        self.ack_ld.insert(from);
        match self.phase {
            Phase::Establishing => {
                self.maybe_establish(out);
                // If we just established, `maybe_establish` activated all
                // acked peers, including this one.
            }
            Phase::Broadcasting => self.activate_peer(from, last_zxid, out),
            _ => {}
        }
    }

    /// Phase 2 completion check: quorum of `ACKNEWLEADER` (self counts
    /// once its `currentEpoch` write is durable).
    fn maybe_establish(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::Establishing || !self.self_established {
            return;
        }
        let mut ackers = self.ack_ld.clone();
        ackers.insert(self.id);
        if !self.config.is_quorum(&ackers) {
            return;
        }
        self.phase = Phase::Broadcasting;
        // COMMIT-LD: the initial history is committed and delivered.
        let initial_end = self.history.last_zxid();
        if initial_end > self.history.last_committed() {
            self.history.mark_committed(initial_end);
        }
        deliver_committed(&self.history, &mut self.delivered_to, &self.metrics, &self.tracer, out);
        out.push(Action::Activated { epoch: self.epoch });
        let acked: Vec<ServerId> = self
            .peers
            .iter()
            .filter(|(id, p)| {
                matches!(p.state, PeerState::Syncing { .. }) && self.ack_ld.contains(id)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in acked {
            // The follower's sync covered the initial history; use its
            // plan end as the ack watermark baseline.
            let plan_end = match &self.peers[&id].state {
                PeerState::Syncing { plan_end, .. } => *plan_end,
                _ => unreachable!(),
            };
            self.activate_peer(id, plan_end, out);
        }
    }

    /// Sends `UPTODATE`, flushes the queued traffic, and starts counting
    /// the peer's acks.
    fn activate_peer(&mut self, from: ServerId, acked: Zxid, out: &mut Vec<Action>) {
        let peer = self.peers.get_mut(&from).expect("peer exists");
        let (queue, plan_end) =
            match std::mem::replace(&mut peer.state, PeerState::Active { acked }) {
                PeerState::Syncing { queue, plan_end } => (queue, plan_end),
                other => {
                    peer.state = other;
                    return;
                }
            };
        let commit_to = self.history.last_committed().min(plan_end);
        out.push(Action::Send { to: from, msg: Message::UpToDate { commit_to } });
        for msg in queue {
            out.push(Action::Send { to: from, msg });
        }
        self.try_commit(out);
    }

    fn on_client_request(&mut self, data: Bytes, out: &mut Vec<Action>) {
        if self.phase != Phase::Broadcasting {
            out.push(Action::ClientRequestRejected { data, reason: RejectReason::NotPrimary });
            return;
        }
        if self.pending_requests.len() >= self.config.request_queue_limit {
            out.push(Action::ClientRequestRejected { data, reason: RejectReason::Overloaded });
            return;
        }
        self.pending_requests.push_back(data);
        self.pump_proposals(out);
    }

    /// Proposes queued requests while the outstanding window allows.
    /// Returns how many proposals went out; each carries the current
    /// commit watermark, so a caller that just advanced it can skip the
    /// standalone `COMMIT` frame (see [`Leader::try_commit`]).
    fn pump_proposals(&mut self, out: &mut Vec<Action>) -> usize {
        let commit_up_to = self.history.last_committed();
        let mut pumped = 0;
        while self.outstanding < self.config.max_outstanding {
            let Some(data) = self.pending_requests.pop_front() else { break };
            self.counter = self.counter.checked_add(1).expect("zxid counter exhausted");
            let zxid = Zxid::new(self.epoch, self.counter);
            let txn = Txn { zxid, data };
            self.history.append(txn.clone());
            self.outstanding += 1;
            pumped += 1;
            self.metrics.proposals_proposed.inc();
            self.tracer.instant(Stage::ProposeEnqueue, zxid.0, 0);
            self.propose_times.insert(zxid, self.now_ms);
            let token = self.token(Pending::SelfAck(zxid));
            out.push(Action::Persist { token, req: PersistRequest::AppendTxns(vec![txn.clone()]) });
            self.broadcast(Message::Propose { txn, commit_up_to }, out);
        }
        self.metrics.outstanding_depth.set(self.outstanding as i64);
        pumped
    }

    /// Sends to active peers; queues for syncing peers (FIFO per peer).
    ///
    /// Two or more active peers produce a single [`Action::Broadcast`]
    /// (targets in id order) so the driver can encode the message once
    /// and fan out shared handles; a lone active peer stays a plain
    /// [`Action::Send`].
    fn broadcast(&mut self, msg: Message, out: &mut Vec<Action>) {
        let mut active: Vec<ServerId> = Vec::with_capacity(self.peers.len());
        for (&id, peer) in self.peers.iter_mut() {
            match &mut peer.state {
                PeerState::Active { .. } => active.push(id),
                PeerState::Syncing { queue, .. } => queue.push(msg.clone()),
                _ => {}
            }
        }
        match active.len() {
            0 => {}
            1 => out.push(Action::Send { to: active[0], msg }),
            _ => out.push(Action::Broadcast { to: active, msg }),
        }
    }

    fn on_ack(&mut self, from: ServerId, zxid: Zxid, out: &mut Vec<Action>) {
        self.metrics.acks_received.inc();
        self.tracer.instant(Stage::AckRx, zxid.0, from.0);
        if zxid > self.history.last_zxid() {
            self.abdicate("ack beyond proposed history", out);
            return;
        }
        let Some(peer) = self.peers.get_mut(&from) else { return };
        if let PeerState::Active { acked } = &mut peer.state {
            if zxid > *acked {
                *acked = zxid;
                self.try_commit(out);
            }
        }
    }

    fn on_persisted(&mut self, token: PersistToken, out: &mut Vec<Action>) {
        let done: Vec<PersistToken> = self.pending.range(..=token).map(|(&t, _)| t).collect();
        let mut best_self_ack: Option<Zxid> = None;
        for t in done {
            match self.pending.remove(&t).expect("token present") {
                Pending::SendNewEpoch => {
                    if self.phase != Phase::PersistingEpoch {
                        continue;
                    }
                    self.phase = Phase::CollectingAckEpoch;
                    let targets: Vec<ServerId> = self
                        .peers
                        .iter_mut()
                        .filter_map(|(&id, p)| match &mut p.state {
                            PeerState::InfoReceived { new_epoch_sent } if !*new_epoch_sent => {
                                *new_epoch_sent = true;
                                Some(id)
                            }
                            _ => None,
                        })
                        .collect();
                    for id in targets {
                        out.push(Action::Send {
                            to: id,
                            msg: Message::NewEpoch { epoch: self.epoch },
                        });
                    }
                    // Our own epoch ack; a single-server ensemble can now
                    // proceed all the way to establishment.
                    self.maybe_begin_establishment(out);
                }
                Pending::EstablishSelf => {
                    self.self_established = true;
                    self.maybe_establish(out);
                }
                Pending::SelfAck(zxid) => {
                    best_self_ack = Some(best_self_ack.map_or(zxid, |b| b.max(zxid)));
                }
            }
        }
        if let Some(zxid) = best_self_ack {
            if zxid > self.self_acked {
                self.self_acked = zxid;
                self.try_commit(out);
            }
        }
    }

    /// Advances the commit watermark to the highest zxid acked by a quorum
    /// (counting our own durable log as an ack).
    fn try_commit(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::Broadcasting {
            return;
        }
        let last_committed = self.history.last_committed();
        let mut watermarks: Vec<(ServerId, Zxid)> = vec![(self.id, self.self_acked)];
        for (&id, p) in &self.peers {
            if let PeerState::Active { acked } = p.state {
                watermarks.push((id, acked));
            }
        }
        let mut candidates: Vec<Zxid> =
            watermarks.iter().map(|&(_, z)| z).filter(|&z| z > last_committed).collect();
        candidates.sort_unstable();
        candidates.dedup();
        let committed = candidates.into_iter().rev().find(|&z| {
            let supporters: BTreeSet<ServerId> =
                watermarks.iter().filter(|&&(_, w)| w >= z).map(|&(id, _)| id).collect();
            self.config.is_quorum(&supporters)
        });
        let Some(z) = committed else { return };
        // Account outstanding completions and emit per-txn commit events.
        for txn in self.history.txns_after(last_committed) {
            if txn.zxid > z {
                break;
            }
            if txn.zxid.epoch() == self.epoch {
                self.outstanding -= 1;
            }
            if let Some(proposed_ms) = self.propose_times.remove(&txn.zxid) {
                self.metrics.quorum_ack_latency_ms.record(self.now_ms.saturating_sub(proposed_ms));
            }
            self.tracer.instant(Stage::Quorum, txn.zxid.0, 0);
            out.push(Action::Committed { zxid: txn.zxid });
        }
        self.metrics.outstanding_depth.set(self.outstanding as i64);
        self.history.mark_committed(z);
        deliver_committed(&self.history, &mut self.delivered_to, &self.metrics, &self.tracer, out);
        // One cumulative COMMIT per quorum crossing — and none at all when
        // the window reopens and new proposals go out in this same
        // `handle()` call: every PROPOSE piggybacks the watermark, so the
        // standalone frame would be pure overhead on a saturated pipeline.
        // (`broadcast` and `pump_proposals` reach the same peer set, so a
        // pumped proposal implies every active and syncing peer saw `z`.)
        // The watermark reaches the followers either way (standalone COMMIT
        // or piggybacked on the pumped PROPOSEs).
        self.tracer.instant(Stage::CommitOut, z.0, 0);
        if self.pump_proposals(out) == 0 {
            self.broadcast(Message::Commit { zxid: z }, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Input;

    const ME: ServerId = ServerId(1);
    const F2: ServerId = ServerId(2);
    const F3: ServerId = ServerId(3);

    fn cfg() -> ClusterConfig {
        ClusterConfig::majority([ServerId(1), ServerId(2), ServerId(3)])
    }

    fn msg(from: ServerId, m: Message) -> Input {
        Input::Message { from, msg: m }
    }

    /// Completes every persist in `actions` immediately, returning the
    /// follow-up actions.
    fn complete_persists(l: &mut Leader, actions: &[Action]) -> Vec<Action> {
        let mut out = Vec::new();
        for a in actions {
            if let Action::Persist { token, .. } = a {
                out.extend(l.handle(Input::Persisted { token: *token }));
            }
        }
        out
    }

    fn sends_to(actions: &[Action], to: ServerId) -> Vec<&Message> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to: t, msg } if *t == to => Some(msg),
                Action::Broadcast { to: ts, msg } if ts.contains(&to) => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// Drives a fresh 3-ensemble leader to Broadcasting with followers 2
    /// and 3 attached (instant persistence everywhere).
    fn established_leader() -> Leader {
        let (mut l, init) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        assert!(init.is_empty(), "needs a quorum of infos first");
        // Follower infos arrive.
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        // Quorum of infos (self + f2): epoch chosen, persist requested.
        assert!(a.iter().any(|x| matches!(
            x,
            Action::Persist { req: PersistRequest::AcceptedEpoch(e), .. } if *e == Epoch(1)
        )));
        let a = complete_persists(&mut l, &a);
        // NEWEPOCH went to f2.
        assert!(matches!(sends_to(&a, F2)[0], Message::NewEpoch { epoch: Epoch(1) }));
        assert_eq!(l.status(), LeaderStatus::CollectingAckEpoch);
        // f3's info arrives late; it gets NEWEPOCH directly.
        let a3 = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a3, F3)[0], Message::NewEpoch { epoch: Epoch(1) }));
        // Epoch acks from both: establishment begins on quorum.
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert_eq!(l.status(), LeaderStatus::Establishing);
        // Sync stream: empty diff + NEWLEADER to f2.
        let f2_msgs = sends_to(&a, F2);
        assert!(matches!(f2_msgs[0], Message::SyncDiff { .. }));
        assert!(matches!(f2_msgs[1], Message::NewLeader { epoch: Epoch(1) }));
        let a2 = complete_persists(&mut l, &a); // currentEpoch persisted
        assert!(a2.is_empty(), "self ack alone is not a quorum");
        let a = l.handle(msg(
            F3,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a, F3)[1], Message::NewLeader { .. }));
        // f2 acks NEWLEADER: with self, that is a quorum → established.
        let a = l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(a.iter().any(|x| matches!(x, Action::Activated { epoch: Epoch(1) })));
        assert!(matches!(sends_to(&a, F2)[0], Message::UpToDate { .. }));
        assert!(l.is_established());
        // f3 finishes too.
        let a = l.handle(msg(F3, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(matches!(sends_to(&a, F3)[0], Message::UpToDate { .. }));
        assert_eq!(l.active_followers().count(), 2);
        l
    }

    #[test]
    fn establishment_walkthrough() {
        let l = established_leader();
        assert_eq!(l.epoch(), Epoch(1));
        assert_eq!(l.status(), LeaderStatus::Broadcasting);
    }

    #[test]
    fn proposal_lifecycle_self_ack_plus_one_follower_commits() {
        let mut l = established_leader();
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        let zxid = Zxid::new(Epoch(1), 1);
        // Propose fans out to both followers; persist requested.
        assert!(matches!(sends_to(&a, F2)[0], Message::Propose { txn, .. } if txn.zxid == zxid));
        assert!(matches!(sends_to(&a, F3)[0], Message::Propose { txn, .. } if txn.zxid == zxid));
        assert_eq!(l.outstanding(), 1);
        // Self persist alone: no commit (1 of 3).
        let a2 = complete_persists(&mut l, &a);
        assert!(!a2.iter().any(|x| matches!(x, Action::Committed { .. })));
        // One follower ack → quorum → commit + deliver + COMMIT broadcast.
        let a3 = l.handle(msg(F2, Message::Ack { zxid }));
        assert!(a3.iter().any(|x| matches!(x, Action::Committed { zxid: z } if *z == zxid)));
        assert!(a3.iter().any(|x| matches!(x, Action::Deliver { txn } if txn.zxid == zxid)));
        assert!(matches!(sends_to(&a3, F2)[0], Message::Commit { zxid: z } if *z == zxid));
        assert_eq!(l.outstanding(), 0);
        assert_eq!(l.last_committed(), zxid);
    }

    #[test]
    fn metrics_track_propose_ack_commit_cycle() {
        let reg = zab_metrics::Registry::new();
        let mut l = established_leader();
        l.set_metrics(CoreMetrics::registered(&reg));
        // Advance the driver clock, then propose; the quorum ack lands
        // 40ms later so the latency histogram must record exactly 40.
        let _ = l.handle(Input::Tick { now_ms: 100 });
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        let zxid = Zxid::new(Epoch(1), 1);
        assert_eq!(reg.snapshot().counter("core.proposals_proposed"), 1);
        assert_eq!(reg.snapshot().gauge("core.outstanding_depth"), 1);
        let _ = complete_persists(&mut l, &a);
        let _ = l.handle(Input::Tick { now_ms: 140 });
        let _ = l.handle(msg(F2, Message::Ack { zxid }));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("core.acks_received"), 1);
        assert_eq!(snap.counter("core.proposals_committed"), 1);
        assert_eq!(snap.gauge("core.outstanding_depth"), 0);
        let lat = snap.histogram("core.quorum_ack_latency_ms").cloned().unwrap_or_default();
        assert_eq!((lat.count, lat.sum, lat.max), (1, 40, 40));
    }

    #[test]
    fn follower_acks_without_leader_persist_do_not_commit() {
        // Commit needs a quorum that includes durable copies; with f2 and
        // f3 acked but the leader's own write still in flight, 2 of 3 have
        // it — that IS a quorum, so it commits. Verify the self-ack is not
        // required when followers alone form a quorum.
        let mut l = established_leader();
        let _a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        let zxid = Zxid::new(Epoch(1), 1);
        let a2 = l.handle(msg(F2, Message::Ack { zxid }));
        assert!(!a2.iter().any(|x| matches!(x, Action::Committed { .. })));
        let a3 = l.handle(msg(F3, Message::Ack { zxid }));
        assert!(a3.iter().any(|x| matches!(x, Action::Committed { .. })));
    }

    #[test]
    fn window_throttles_and_queue_drains_on_commit() {
        let mut config = cfg();
        config.max_outstanding = 1;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        // Bring up one follower for a quorum.
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        let a = complete_persists(&mut l, &a);
        let _ = a;
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());

        let a1 = l.handle(Input::ClientRequest { data: Bytes::from_static(b"1") });
        let _a2 = l.handle(Input::ClientRequest { data: Bytes::from_static(b"2") });
        assert_eq!(l.outstanding(), 1);
        assert_eq!(l.queued_requests(), 1);
        complete_persists(&mut l, &a1);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        // Commit of 1 pumps proposal 2.
        assert!(a.iter().any(|x| matches!(
            x,
            Action::Send { msg: Message::Propose { txn, .. }, .. } if txn.zxid == Zxid::new(Epoch(1), 2)
        )));
        assert_eq!(l.outstanding(), 1);
        assert_eq!(l.queued_requests(), 0);
    }

    #[test]
    fn pumped_proposal_suppresses_standalone_commit_frame() {
        let mut config = cfg();
        config.max_outstanding = 1;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());

        let a1 = l.handle(Input::ClientRequest { data: Bytes::from_static(b"1") });
        let _ = l.handle(Input::ClientRequest { data: Bytes::from_static(b"2") });
        complete_persists(&mut l, &a1);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        // The commit pumps proposal 2, which carries the watermark — so
        // no standalone COMMIT frame goes out in the same batch.
        let f2_msgs = sends_to(&a, F2);
        assert!(f2_msgs.iter().any(|m| matches!(
            m,
            Message::Propose { txn, commit_up_to }
                if txn.zxid == Zxid::new(Epoch(1), 2) && *commit_up_to == Zxid::new(Epoch(1), 1)
        )));
        assert!(!f2_msgs.iter().any(|m| matches!(m, Message::Commit { .. })));

        // With nothing queued, the next commit falls back to an explicit
        // COMMIT broadcast.
        complete_persists(&mut l, &a);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 2) }));
        assert!(sends_to(&a, F2)
            .iter()
            .any(|m| matches!(m, Message::Commit { zxid } if *zxid == Zxid::new(Epoch(1), 2))));
    }

    #[test]
    fn request_rejected_before_establishment() {
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        assert!(matches!(
            a[0],
            Action::ClientRequestRejected { reason: RejectReason::NotPrimary, .. }
        ));
    }

    #[test]
    fn request_queue_limit_rejects_overload() {
        let mut config = cfg();
        config.max_outstanding = 1;
        config.request_queue_limit = 2;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        for _ in 0..3 {
            l.handle(Input::ClientRequest { data: Bytes::from_static(b"y") });
        }
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"z") });
        assert!(a.iter().any(|x| matches!(
            x,
            Action::ClientRequestRejected { reason: RejectReason::Overloaded, .. }
        )));
    }

    #[test]
    fn fresher_follower_in_discovery_forces_abdication() {
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo {
                accepted_epoch: Epoch::ZERO,
                last_zxid: Zxid::new(Epoch(1), 5),
            },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch(1), last_zxid: Zxid::new(Epoch(1), 5) },
        ));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        assert_eq!(l.status(), LeaderStatus::Defunct);
    }

    #[test]
    fn higher_accepted_epoch_in_info_forces_abdication() {
        let mut l = established_leader();
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch(9), last_zxid: Zxid::ZERO },
        ));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn late_joiner_during_broadcast_gets_queued_traffic_after_sync() {
        // Build a 3-ensemble established with only f2; then f3 joins while
        // a proposal is being made mid-sync.
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());
        // Commit one txn.
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"pre") });
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        // f3 joins (fresh): fast path is not taken (accepted 0 < epoch 1).
        let a = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a, F3)[0], Message::NewEpoch { .. }));
        let a = l.handle(msg(
            F3,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        // Sync carries the committed txn.
        match sends_to(&a, F3)[0] {
            Message::SyncDiff { txns } => assert_eq!(txns.len(), 1),
            m => panic!("expected DIFF, got {}", m.kind()),
        }
        // While f3 syncs, another proposal happens: f3 must NOT see it yet.
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"mid") });
        assert!(sends_to(&a, F3).is_empty(), "proposal leaked to syncing peer");
        assert_eq!(sends_to(&a, F2).len(), 1);
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 2) }));
        // f3 finishes sync: UPTODATE, then the queued PROPOSE and COMMIT.
        let a = l.handle(msg(
            F3,
            Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::new(Epoch(1), 1) },
        ));
        let f3_msgs = sends_to(&a, F3);
        assert!(matches!(f3_msgs[0], Message::UpToDate { .. }));
        assert!(f3_msgs.iter().any(|m| matches!(
            m,
            Message::Propose { txn, .. } if txn.zxid == Zxid::new(Epoch(1), 2)
        )));
        assert!(f3_msgs.iter().any(|m| matches!(
            m,
            Message::Commit { zxid } if *zxid == Zxid::new(Epoch(1), 2)
        )));
    }

    #[test]
    fn peer_disconnect_removes_it_from_commit_accounting() {
        let mut l = established_leader();
        l.handle(Input::PeerDisconnected { peer: F2 });
        assert_eq!(l.active_followers().count(), 1);
        // Proposals still commit via self + f3.
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        complete_persists(&mut l, &a);
        let a = l.handle(msg(F3, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        assert!(a.iter().any(|x| matches!(x, Action::Committed { .. })));
    }

    #[test]
    fn losing_quorum_contact_abdicates_on_tick() {
        let mut l = established_leader();
        l.handle(Input::PeerDisconnected { peer: F2 });
        l.handle(Input::PeerDisconnected { peer: F3 });
        let a = l.handle(Input::Tick { now_ms: 10_000 });
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::GoToElection { reason: "lost contact with a quorum" })));
    }

    #[test]
    fn pings_flow_to_peers_on_interval() {
        let mut l = established_leader();
        let a = l.handle(Input::Tick { now_ms: 60 });
        let pings = a
            .iter()
            .filter(|x| matches!(x, Action::Send { msg: Message::Ping { .. }, .. }))
            .count();
        assert_eq!(pings, 2);
    }

    #[test]
    fn establish_timeout_abandons_stuck_establishment() {
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(Input::Tick { now_ms: 5_000 });
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::GoToElection { reason: "failed to establish in time" })));
    }

    #[test]
    fn ack_beyond_history_is_fatal() {
        let mut l = established_leader();
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 99) }));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn snap_sync_requested_for_deep_lag() {
        let mut config = cfg();
        config.snap_threshold = 1;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        // Commit two txns so the gap to a fresh joiner exceeds threshold 1.
        for _ in 0..2 {
            let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
            complete_persists(&mut l, &a);
        }
        l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 2) }));
        // Fresh f3 joins: plan must be SNAP → TakeSnapshot requested.
        let _ = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        let a = l.handle(msg(
            F3,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(a.iter().any(|x| matches!(x, Action::TakeSnapshot)));
        // Snapshot arrives: SNAP + NEWLEADER go out.
        let a = l.handle(Input::SnapshotReady {
            snapshot: Bytes::from_static(b"state"),
            zxid: Zxid::new(Epoch(1), 2),
        });
        let f3_msgs = sends_to(&a, F3);
        assert!(matches!(f3_msgs[0], Message::SyncSnap { .. }));
        assert!(matches!(f3_msgs[1], Message::NewLeader { .. }));
    }

    #[test]
    fn messages_from_non_members_are_ignored() {
        let mut l = established_leader();
        let a = l.handle(msg(ServerId(99), Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        assert!(a.is_empty());
    }

    #[test]
    fn commit_watermark_skips_to_highest_quorum_acked() {
        // Pipelined proposals acked cumulatively: a single Ack(3) commits
        // 1..3 at once.
        let mut l = established_leader();
        let mut persists = Vec::new();
        for _ in 0..3 {
            persists.extend(l.handle(Input::ClientRequest { data: Bytes::from_static(b"p") }));
        }
        complete_persists(&mut l, &persists);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 3) }));
        let committed: Vec<Zxid> = a
            .iter()
            .filter_map(|x| match x {
                Action::Committed { zxid } => Some(*zxid),
                _ => None,
            })
            .collect();
        assert_eq!(committed, (1..=3).map(|c| Zxid::new(Epoch(1), c)).collect::<Vec<_>>());
        // One cumulative COMMIT message.
        let commits =
            sends_to(&a, F3).iter().filter(|m| matches!(m, Message::Commit { .. })).count();
        assert_eq!(commits, 1);
    }

    #[test]
    fn sync_chunks_bounds_each_chunk_and_preserves_order() {
        let big = SYNC_CHUNK_BYTES / 2;
        let txns: Vec<Txn> = (1..=5)
            .map(|i| Txn::new(Zxid::new(Epoch(1), i), Bytes::from(vec![i as u8; big])))
            .collect();
        let chunks = sync_chunks(txns.clone());
        assert!(chunks.len() > 1, "1.25 MiB of payload must split");
        for chunk in &chunks {
            let bytes: usize = chunk.iter().map(|t| t.data.len() + SYNC_TXN_OVERHEAD).sum();
            assert!(chunk.len() == 1 || bytes <= SYNC_CHUNK_BYTES);
        }
        let flat: Vec<Txn> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, txns);

        // Empty input still yields the mandatory leading (empty) chunk.
        assert_eq!(sync_chunks(Vec::new()), vec![Vec::new()]);

        // A single oversized txn travels alone rather than being dropped.
        let giant =
            vec![Txn::new(Zxid::new(Epoch(1), 9), Bytes::from(vec![0u8; SYNC_CHUNK_BYTES * 2]))];
        let chunks = sync_chunks(giant.clone());
        assert_eq!(chunks.into_iter().flatten().collect::<Vec<_>>(), giant);
    }

    #[test]
    fn large_diff_sync_streams_as_multiple_bounded_messages() {
        // Establish with f2 only, grow a history too large for one sync
        // message, then let f3 join fresh: its DIFF must arrive as several
        // consecutive SyncDiff chunks closed by NEWLEADER, covering the
        // whole tail in order.
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());
        let payload = vec![0u8; SYNC_CHUNK_BYTES / 4];
        for i in 1..=6u32 {
            let a = l.handle(Input::ClientRequest { data: Bytes::from(payload.clone()) });
            complete_persists(&mut l, &a);
            l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), i) }));
        }
        let a = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a, F3)[0], Message::NewEpoch { .. }));
        let a = l.handle(msg(
            F3,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        let f3_msgs = sends_to(&a, F3);
        let mut streamed: Vec<Txn> = Vec::new();
        let mut diffs = 0usize;
        for m in &f3_msgs {
            match m {
                Message::SyncDiff { txns } => {
                    let bytes: usize = txns.iter().map(|t| t.data.len() + SYNC_TXN_OVERHEAD).sum();
                    assert!(txns.len() == 1 || bytes <= SYNC_CHUNK_BYTES);
                    streamed.extend(txns.iter().cloned());
                    diffs += 1;
                }
                Message::NewLeader { .. } => break,
                m => panic!("unexpected message in sync stream: {}", m.kind()),
            }
        }
        assert!(diffs > 1, "6 × 256 KiB must not fit one sync message");
        assert!(matches!(f3_msgs.last().expect("stream not empty"), Message::NewLeader { .. }));
        assert_eq!(streamed.len(), 6);
        assert!(streamed.windows(2).all(|w| w[0].zxid < w[1].zxid));
    }
}
