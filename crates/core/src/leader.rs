//! The leader automaton (the paper's leader protocol, phases 1–3).
//!
//! A [`Leader`] incarnation is created when leader election (Phase 0)
//! nominates this process. It then:
//!
//! 1. **Discovery** — collects `FOLLOWERINFO` from a quorum, proposes
//!    `NEWEPOCH(e')` with `e'` greater than every accepted epoch it saw
//!    (durably adopting `e'` itself first), and collects a quorum of
//!    `ACKEPOCH`. If any follower reports a fresher history than the
//!    leader's own, the leader abdicates — ZooKeeper's Fast Leader Election
//!    elects the process with the freshest history precisely so that this
//!    never happens in the common case.
//! 2. **Synchronization** — for each follower, plans DIFF/TRUNC/SNAP
//!    against its last zxid, streams the plan followed by `NEWLEADER(e')`,
//!    and on a quorum of `ACKNEWLEADER` (counting its own durable epoch
//!    adoption) becomes **established**: it commits and delivers the
//!    initial history and activates synced followers with `UPTODATE`.
//! 3. **Broadcast** — assigns zxids `(e', counter)` to client requests,
//!    pipelines up to `max_outstanding` proposals, counts its own durable
//!    log append as an ack, and commits when a quorum acked. Commit
//!    messages carry a cumulative watermark.
//!
//! Followers that arrive late (or reconnect) at any point are taken through
//! their own discovery/synchronization and then activated; proposals and
//! commits generated while a follower is syncing are queued per peer and
//! flushed after `UPTODATE`, preserving the FIFO order the protocol needs.

use crate::config::{ClusterConfig, Topology};
use crate::delivery::deliver_committed;
use crate::events::{Action, Input, PersistRequest, PersistToken, PersistentState, RejectReason};
use crate::history::{History, SyncPlan};
use crate::messages::Message;
use crate::metrics::CoreMetrics;
use crate::types::{Epoch, ServerId, Txn, Zxid};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use zab_trace::{Stage, Tracer};

/// Approximate payload-byte budget for a single sync-stream message.
///
/// A follower that has fallen far behind would otherwise receive its
/// entire missing history as one `SyncDiff`/`SyncTrunc`/`SyncSnap`,
/// whose encoded size grows without bound and can exceed any transport
/// frame limit. The leader instead splits the transaction tail into
/// chunks of at most this many payload bytes and streams them as
/// consecutive sync messages; the follower's sync path appends each
/// chunk in arrival order until `NEWLEADER` closes the stream, so the
/// split is invisible to the protocol.
const SYNC_CHUNK_BYTES: usize = 1 << 20;

/// Per-transaction overhead allowance (zxid + framing) when budgeting
/// sync chunks, so streams of tiny transactions still chunk sanely.
const SYNC_TXN_OVERHEAD: usize = 64;

/// Splits a sync transaction tail into bounded chunks. Always returns at
/// least one (possibly empty) chunk, because the first chunk rides inside
/// the plan's opening message (`SyncDiff`/`SyncTrunc`/`SyncSnap`).
fn sync_chunks(txns: Vec<Txn>) -> Vec<Vec<Txn>> {
    let mut chunks: Vec<Vec<Txn>> = vec![Vec::new()];
    let mut budget = 0usize;
    for txn in txns {
        let cost = txn.data.len() + SYNC_TXN_OVERHEAD;
        let current = chunks.last_mut().expect("chunks is never empty");
        if budget + cost > SYNC_CHUNK_BYTES && !current.is_empty() {
            chunks.push(vec![txn]);
            budget = cost;
        } else {
            current.push(txn);
            budget += cost;
        }
    }
    chunks
}

/// Budgeted payload bytes of one sync chunk (what the token bucket and
/// the `core.sync_bytes_sent` counter account).
fn chunk_cost(chunk: &[Txn]) -> u64 {
    chunk.iter().map(|t| (t.data.len() + SYNC_TXN_OVERHEAD) as u64).sum()
}

/// Token-bucket capacity for paced sync shipping: at least one second of
/// budget, and never smaller than a couple of maximal chunks so a single
/// oversized transaction can always ship once the bucket fills.
fn config_sync_burst(config: &ClusterConfig) -> u64 {
    config.sync_rate_bytes_per_sec.max((2 * SYNC_CHUNK_BYTES) as u64)
}

/// Live progress of a peer's catch-up sync, for observability
/// (`/health` on a node driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncProgress {
    /// The syncing peer.
    pub peer: ServerId,
    /// Sync chunks not yet shipped to it.
    pub chunks_remaining: u64,
    /// Budgeted payload bytes in those chunks.
    pub bytes_remaining: u64,
}

/// Leader-side replication lag for one follower: the distance between the
/// leader's committed frontier and what the follower has durably acked
/// (active peers) or been shipped (syncing peers). See
/// [`Leader::follower_lags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowerLag {
    /// The follower.
    pub peer: ServerId,
    /// Its cumulative ack watermark (active peers only — a syncing peer
    /// has no broadcast-phase watermark yet).
    pub acked: Option<Zxid>,
    /// Committed transactions the follower has not acked, when computable
    /// in O(1): a same-epoch counter difference for active peers; queued
    /// sync-stream transactions plus the same-epoch live gap past the plan
    /// end for syncing peers. `None` when the watermarks span epochs (the
    /// gap is real but counting it would walk the history).
    pub lag_txns: Option<u64>,
    /// True while a catch-up sync stream is open to this peer.
    pub syncing: bool,
}

/// Committed-transaction count between two watermarks when it is an O(1)
/// same-epoch counter difference; `None` across epochs.
fn counter_gap(from: Zxid, to: Zxid) -> Option<u64> {
    if to <= from {
        Some(0)
    } else if from.epoch() == to.epoch() {
        Some((to.counter() - from.counter()) as u64)
    } else {
        None
    }
}

/// Cursor over the unshipped tail of a paced sync stream.
///
/// The plan's opening message (`SyncDiff`/`SyncTrunc`/`SyncSnap` with the
/// first chunk) always goes out immediately; each later chunk is released
/// only after the previous one is `SyncAck`ed *and* the shared token
/// bucket has budget for it, so a herd of rejoining followers trickles
/// instead of bursting its entire missing history into socket buffers.
/// `NEWLEADER` ships together with the final chunk. An empty `remaining`
/// means the stream is fully shipped and the peer is awaiting activation.
#[derive(Debug)]
struct SyncSession {
    /// Chunks not yet shipped, in zxid order.
    remaining: VecDeque<Vec<Txn>>,
    /// The last transmission, not yet `SyncAck`ed: the exact messages to
    /// retransmit if the link swallowed them, and the history point whose
    /// ack proves receipt. `None` once acked (or for a fully shipped
    /// stream awaiting `ACKNEWLEADER`).
    outstanding: Option<(Vec<Message>, Zxid)>,
    /// A release was deferred for lack of tokens; retried on `Tick`.
    throttled: bool,
    /// When the stream last moved (opened, chunk shipped, or acked);
    /// a stalled stream is retransmitted after `follower_timeout_ms`.
    last_progress_ms: u64,
    /// `NEWLEADER` has shipped: the stream no longer extends toward the
    /// live commit frontier, and broadcast traffic queues for the
    /// activation flush.
    newleader_sent: bool,
    /// Gap to the commit frontier when the stream last extended past its
    /// plan, and how many consecutive extensions failed to shrink it.
    last_gap: Option<u64>,
    gap_growth: u8,
    /// Convergence escape hatch: the gap grew across consecutive
    /// extensions (the configured sync rate sits below the live append
    /// byte rate), so the throttle can never let the stream finish.
    /// Express releases stay ack-gated and charge the bucket, but fill
    /// transmissions to the burst budget and are never deferred.
    express: bool,
}

impl SyncSession {
    /// A fully shipped stream (nothing left to pace; `NEWLEADER` is out
    /// and `ACKNEWLEADER` is awaited).
    fn shipped(now_ms: u64) -> SyncSession {
        SyncSession {
            remaining: VecDeque::new(),
            outstanding: None,
            throttled: false,
            last_progress_ms: now_ms,
            newleader_sent: true,
            last_gap: None,
            gap_growth: 0,
            express: false,
        }
    }
}

/// Budgeted payload bytes of a (re)transmitted sync message: its chunk,
/// plus the snapshot body for a SNAP opening.
fn sync_wire_cost(msg: &Message) -> u64 {
    match msg {
        Message::SyncDiff { txns } | Message::SyncTrunc { txns, .. } => chunk_cost(txns),
        Message::SyncSnap { snapshot, txns, .. } => snapshot.len() as u64 + chunk_cost(txns),
        _ => 0,
    }
}

/// The highest zxid a sync message carries (the point whose `SyncAck`
/// confirms its receipt).
fn sync_msg_end(msg: &Message) -> Option<Zxid> {
    match msg {
        Message::SyncDiff { txns }
        | Message::SyncTrunc { txns, .. }
        | Message::SyncSnap { txns, .. } => txns.last().map(|t| t.zxid),
        _ => None,
    }
}

/// Externally visible leader phase, for tests and observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderStatus {
    /// Phase 1a: waiting for a quorum of `FOLLOWERINFO`.
    CollectingInfo,
    /// Phase 1b: `NEWEPOCH` proposed, waiting for a quorum of `ACKEPOCH`.
    CollectingAckEpoch,
    /// Phase 2: syncing followers, waiting for a quorum of `ACKNEWLEADER`.
    Establishing,
    /// Phase 3: established primary, broadcasting.
    Broadcasting,
    /// The incarnation ended; a new election is required.
    Defunct,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    CollectingInfo,
    /// `acceptedEpoch = e'` persist in flight; `NEWEPOCH` goes out after.
    PersistingEpoch,
    CollectingAckEpoch,
    Establishing,
    Broadcasting,
    Defunct,
}

/// Per-connected-follower state on the leader.
#[derive(Debug)]
enum PeerState {
    /// `FOLLOWERINFO` received; `NEWEPOCH` sent (or queued behind the
    /// epoch persist).
    InfoReceived { new_epoch_sent: bool },
    /// `ACKEPOCH` received during Phase 1b; sync is planned when a quorum
    /// completes Phase 1.
    EpochAcked { last_zxid: Zxid },
    /// Needs a SNAP sync; waiting for the application snapshot.
    AwaitingSnapshot,
    /// Sync stream opened; traffic generated meanwhile is queued.
    /// `plan_end` is the history tail covered by the sync stream;
    /// `session` paces the unshipped chunk tail (`NEWLEADER` rides with
    /// the final chunk).
    Syncing { queue: Vec<Message>, plan_end: Zxid, session: SyncSession },
    /// Fully synced and activated; `acked` is its cumulative ack watermark.
    ///
    /// `relay_ready` flips on the first `ACK` (proof the follower
    /// processed `UPTODATE` and is in its broadcast phase); only ready
    /// followers participate in the relay tree. `last_progress_ms` stamps
    /// the last `acked` advance, for the relayed-member stall detector.
    Active { acked: Zxid, relay_ready: bool, last_progress_ms: u64 },
}

/// Relay-tree dissemination plan (leader side, [`Topology::Relay`] only).
/// Rebuilt from scratch by `recompute_topology` whenever membership or
/// readiness changes; both maps stay empty under star topology.
#[derive(Debug, Default)]
struct RelayPlan {
    /// relay → the group members it forwards broadcast frames to.
    groups: BTreeMap<ServerId, Vec<ServerId>>,
    /// member → its relay (reverse index; relays themselves are absent).
    parent: BTreeMap<ServerId, ServerId>,
}

/// Below this many relay-ready followers a tree only adds a hop, so the
/// plan stays star-shaped.
const MIN_RELAY_FANOUT: usize = 4;

#[derive(Debug)]
struct Peer {
    state: PeerState,
    last_contact_ms: u64,
}

/// What a pending durability token completes.
#[derive(Debug)]
enum Pending {
    /// `acceptedEpoch = e'` persisted → send `NEWEPOCH` to peers.
    SendNewEpoch,
    /// `currentEpoch = e'` persisted → the leader's own `NEWLEADER` ack.
    EstablishSelf,
    /// A proposal appended durably → the leader's own proposal ack.
    SelfAck(Zxid),
}

/// The leader protocol automaton. Drive it with [`Leader::handle`].
#[derive(Debug)]
pub struct Leader {
    id: ServerId,
    config: ClusterConfig,
    accepted_epoch: Epoch,
    current_epoch: Epoch,
    history: History,
    delivered_to: Zxid,
    /// The leader's election-time vote `(currentEpoch, lastZxid)`; any
    /// follower reporting fresher forces abdication.
    self_vote: (Epoch, Zxid),
    /// The epoch being established / established (`e'`). Valid from
    /// `PersistingEpoch` onward.
    epoch: Epoch,
    phase: Phase,
    peers: BTreeMap<ServerId, Peer>,
    /// Phase-1a votes (`FOLLOWERINFO` senders, incl. self).
    info_votes: BTreeMap<ServerId, Epoch>,
    /// Phase-1b acks (`ACKEPOCH` senders, incl. self).
    ack_epoch: BTreeSet<ServerId>,
    /// Phase-2 acks (`ACKNEWLEADER` senders; self tracked separately).
    ack_ld: BTreeSet<ServerId>,
    /// True once our own `currentEpoch = e'` write is durable.
    self_established: bool,
    /// Zxid counter for the established epoch.
    counter: u32,
    /// Own durable log watermark (our implicit ack).
    self_acked: Zxid,
    /// Client requests not yet proposed (back-pressure beyond the window).
    pending_requests: VecDeque<Bytes>,
    /// Proposals in flight: proposed but not yet committed.
    outstanding: usize,
    /// True while a `TakeSnapshot` request is with the application.
    snapshot_pending: bool,
    /// Latest application snapshot this incarnation knows about (from a
    /// driver compaction or a completed `TakeSnapshot`), with the zxid it
    /// covers. Serves SNAP syncs for lag behind the compaction horizon
    /// without a fresh application round trip.
    retained_snapshot: Option<(Bytes, Zxid)>,
    /// Token-bucket balance for paced sync shipping, in payload bytes.
    sync_tokens: u64,
    /// Driver time of the last token refill.
    last_sync_refill_ms: u64,
    now_ms: u64,
    started_ms: u64,
    last_ping_ms: u64,
    next_token: u64,
    pending: BTreeMap<PersistToken, Pending>,
    /// Instrument bundle (standalone by default; see [`Leader::set_metrics`]).
    metrics: CoreMetrics,
    /// Flight recorder handle (disabled by default; see
    /// [`Leader::set_tracer`]).
    tracer: Tracer,
    /// Propose time (driver ms) per in-flight own-epoch proposal, for the
    /// quorum-ack latency histogram. Bounded by the outstanding window and
    /// discarded with the incarnation.
    propose_times: BTreeMap<Zxid, u64>,
    /// Current relay dissemination plan (empty under [`Topology::Star`]).
    relay: RelayPlan,
    /// Set when readiness or membership changed; the plan is rebuilt at
    /// the end of the same `handle()` call, so a stale plan never
    /// survives into the next input.
    topology_dirty: bool,
}

impl Leader {
    /// Creates a leader incarnation from recovered durable state and
    /// returns it with its initial actions. `applied_to` is the zxid the
    /// driver's application has already applied up to; delivery resumes
    /// after it.
    ///
    /// In a single-server ensemble the returned actions already complete
    /// Phase 1a (the leader's own info forms a quorum).
    pub fn new(
        id: ServerId,
        config: ClusterConfig,
        state: PersistentState,
        applied_to: Zxid,
        now_ms: u64,
    ) -> (Leader, Vec<Action>) {
        let delivered_to = applied_to.max(state.history.base());
        let self_vote = (state.current_epoch, state.history.last_zxid());
        let self_acked = state.history.last_zxid();
        let sync_burst = config_sync_burst(&config);
        let mut l = Leader {
            id,
            config,
            accepted_epoch: state.accepted_epoch,
            current_epoch: state.current_epoch,
            history: state.history,
            delivered_to,
            self_vote,
            epoch: Epoch::ZERO,
            phase: Phase::CollectingInfo,
            peers: BTreeMap::new(),
            info_votes: BTreeMap::new(),
            ack_epoch: BTreeSet::new(),
            ack_ld: BTreeSet::new(),
            self_established: false,
            counter: 0,
            self_acked,
            pending_requests: VecDeque::new(),
            outstanding: 0,
            snapshot_pending: false,
            retained_snapshot: None,
            sync_tokens: sync_burst,
            last_sync_refill_ms: now_ms,
            now_ms,
            started_ms: now_ms,
            last_ping_ms: now_ms,
            next_token: 0,
            pending: BTreeMap::new(),
            metrics: CoreMetrics::standalone(),
            tracer: Tracer::disabled(),
            propose_times: BTreeMap::new(),
            relay: RelayPlan::default(),
            topology_dirty: false,
        };
        let mut out = Vec::new();
        l.info_votes.insert(id, l.accepted_epoch);
        l.maybe_finish_info_collection(&mut out);
        (l, out)
    }

    /// This leader's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Injects the instrument bundle this automaton records into,
    /// replacing the default standalone instruments. Call right after
    /// construction, before driving inputs.
    pub fn set_metrics(&mut self, metrics: CoreMetrics) {
        self.metrics = metrics;
    }

    /// Injects the flight-recorder handle this automaton records lifecycle
    /// events into (propose-enqueue, ack-rx, quorum, commit-out, deliver).
    /// Call right after construction, before driving inputs.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The epoch this leader is establishing or has established.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Current phase, for observability.
    pub fn status(&self) -> LeaderStatus {
        match self.phase {
            Phase::CollectingInfo | Phase::PersistingEpoch => LeaderStatus::CollectingInfo,
            Phase::CollectingAckEpoch => LeaderStatus::CollectingAckEpoch,
            Phase::Establishing => LeaderStatus::Establishing,
            Phase::Broadcasting => LeaderStatus::Broadcasting,
            Phase::Defunct => LeaderStatus::Defunct,
        }
    }

    /// True once established (phase 3).
    pub fn is_established(&self) -> bool {
        self.phase == Phase::Broadcasting
    }

    /// Tail of the accepted history.
    pub fn last_zxid(&self) -> Zxid {
        self.history.last_zxid()
    }

    /// Highest committed zxid.
    pub fn last_committed(&self) -> Zxid {
        self.history.last_committed()
    }

    /// Number of proposals in flight (proposed, not committed).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Number of client requests queued behind the outstanding window.
    pub fn queued_requests(&self) -> usize {
        self.pending_requests.len()
    }

    /// Followers currently active (synced and serving).
    pub fn active_followers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.peers.iter().filter_map(|(&id, p)| match p.state {
            PeerState::Active { .. } => Some(id),
            _ => None,
        })
    }

    /// Snapshot of the durable protocol state (what a driver would write).
    pub fn persistent_state(&self) -> PersistentState {
        PersistentState {
            accepted_epoch: self.accepted_epoch,
            current_epoch: self.current_epoch,
            history: self.history.clone(),
        }
    }

    fn token(&mut self, purpose: Pending) -> PersistToken {
        self.next_token += 1;
        let t = PersistToken(self.next_token);
        self.pending.insert(t, purpose);
        t
    }

    fn abdicate(&mut self, reason: &'static str, out: &mut Vec<Action>) {
        self.phase = Phase::Defunct;
        self.pending.clear();
        out.push(Action::GoToElection { reason });
    }

    /// Feeds one input to the automaton, returning the actions the driver
    /// must perform. After `GoToElection` is emitted, all further inputs
    /// return no actions.
    pub fn handle(&mut self, input: Input) -> Vec<Action> {
        let mut out = Vec::new();
        if self.phase == Phase::Defunct {
            return out;
        }
        match input {
            Input::Tick { now_ms } => self.on_tick(now_ms, &mut out),
            Input::Message { from, msg } => self.on_message(from, msg, &mut out),
            Input::Persisted { token } => self.on_persisted(token, &mut out),
            Input::ClientRequest { data } => self.on_client_request(data, &mut out),
            Input::SnapshotReady { snapshot, zxid } => {
                self.on_snapshot_ready(snapshot, zxid, &mut out)
            }
            Input::PeerDisconnected { peer } => {
                self.peers.remove(&peer);
                self.ack_ld.remove(&peer);
                self.purge_from_plan(peer);
            }
            Input::Compact { through, snapshot } => {
                let point = through.min(self.delivered_to);
                if point > self.history.base() {
                    self.history.purge_through(point);
                }
                // Retain the compaction snapshot: it is the only thing
                // that can serve a follower whose lag now predates the
                // compaction horizon.
                if let Some(snap) = snapshot {
                    if through <= self.delivered_to {
                        self.retained_snapshot = Some((snap, through));
                    }
                }
            }
        }
        // Rebuild the relay plan in the same input cycle that dirtied it:
        // a stale plan must never route the next broadcast (its switch
        // replays are what keep every per-path stream gap-free).
        if self.topology_dirty && self.phase != Phase::Defunct {
            self.recompute_topology(&mut out);
        }
        out
    }

    fn on_tick(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        self.now_ms = now_ms;
        self.pace_syncs(now_ms, out);
        if self.phase != Phase::Broadcasting
            && now_ms.saturating_sub(self.started_ms) > self.config.establish_timeout_ms
        {
            self.abdicate("failed to establish in time", out);
            return;
        }
        if now_ms.saturating_sub(self.last_ping_ms) >= self.config.ping_interval_ms {
            self.last_ping_ms = now_ms;
            let last_committed = self.history.last_committed();
            for &id in self.peers.keys() {
                out.push(Action::Send { to: id, msg: Message::Ping { last_committed } });
            }
        }
        if self.phase == Phase::Broadcasting {
            let mut alive: BTreeSet<ServerId> = self
                .peers
                .iter()
                .filter(|(_, p)| {
                    now_ms.saturating_sub(p.last_contact_ms) <= self.config.leader_timeout_ms
                })
                .map(|(&id, _)| id)
                .collect();
            alive.insert(self.id);
            if !self.config.is_quorum(&alive) {
                self.abdicate("lost contact with a quorum", out);
                return;
            }
            self.detect_relay_stalls(now_ms);
        }
    }

    /// Relayed-member stall detector. A member whose relay→member link
    /// died while both still reach the leader is invisible to the
    /// connection-level failure detector: pings flow, acks just stop.
    /// If a relayed member stays behind the commit watermark with no ack
    /// progress for a follower timeout, demote it to not-ready — the
    /// plan rebuild (same input cycle) drops it from the tree and
    /// replays it back onto the direct path. Readiness is re-earned on
    /// its next ack, so a healthy member rejoins the tree quickly while
    /// a truly cut one keeps falling back to direct.
    fn detect_relay_stalls(&mut self, now_ms: u64) {
        if self.relay.parent.is_empty() {
            return;
        }
        let last_committed = self.history.last_committed();
        let timeout = self.config.follower_timeout_ms;
        let mut stalled = false;
        for (id, p) in self.peers.iter_mut() {
            if !self.relay.parent.contains_key(id) {
                continue;
            }
            if let PeerState::Active { acked, relay_ready, last_progress_ms } = &mut p.state {
                if *relay_ready
                    && *acked < last_committed
                    && now_ms.saturating_sub(*last_progress_ms) > timeout
                {
                    *relay_ready = false;
                    *last_progress_ms = now_ms;
                    stalled = true;
                }
            }
        }
        if stalled {
            self.topology_dirty = true;
        }
    }

    fn on_message(&mut self, from: ServerId, msg: Message, out: &mut Vec<Action>) {
        if from == self.id || !self.config.quorum.members().contains(&from) {
            return;
        }
        if let Some(p) = self.peers.get_mut(&from) {
            p.last_contact_ms = self.now_ms;
        }
        match msg {
            Message::FollowerInfo { accepted_epoch, last_zxid } => {
                self.on_follower_info(from, accepted_epoch, last_zxid, out)
            }
            Message::AckEpoch { current_epoch, last_zxid } => {
                self.on_ack_epoch(from, current_epoch, last_zxid, out)
            }
            Message::AckNewLeader { epoch, last_zxid } => {
                self.on_ack_new_leader(from, epoch, last_zxid, out)
            }
            Message::Ack { zxid } => self.on_ack(from, zxid, out),
            Message::SyncAck { last_zxid } => self.on_sync_ack(from, last_zxid, out),
            Message::Pong { .. } => {
                // Contact timestamp already refreshed above.
            }
            // Messages a leader never receives from correct followers.
            _ => {
                // Drop silently: a reconnecting follower's stale traffic
                // may race its FOLLOWERINFO.
            }
        }
    }

    fn on_follower_info(
        &mut self,
        from: ServerId,
        accepted_epoch: Epoch,
        last_zxid: Zxid,
        out: &mut Vec<Action>,
    ) {
        // A (re)joining follower starts from a clean slate.
        self.ack_ld.remove(&from);
        self.purge_from_plan(from);
        match self.phase {
            Phase::CollectingInfo => {
                self.info_votes.insert(from, accepted_epoch);
                self.peers.insert(
                    from,
                    Peer {
                        state: PeerState::InfoReceived { new_epoch_sent: false },
                        last_contact_ms: self.now_ms,
                    },
                );
                self.maybe_finish_info_collection(out);
            }
            Phase::PersistingEpoch => {
                if accepted_epoch >= self.epoch {
                    self.abdicate("follower accepted an epoch at or above ours", out);
                    return;
                }
                self.peers.insert(
                    from,
                    Peer {
                        state: PeerState::InfoReceived { new_epoch_sent: false },
                        last_contact_ms: self.now_ms,
                    },
                );
            }
            Phase::CollectingAckEpoch | Phase::Establishing => {
                if accepted_epoch >= self.epoch {
                    self.abdicate("follower accepted an epoch at or above ours", out);
                    return;
                }
                self.peers.insert(
                    from,
                    Peer {
                        state: PeerState::InfoReceived { new_epoch_sent: true },
                        last_contact_ms: self.now_ms,
                    },
                );
                out.push(Action::Send { to: from, msg: Message::NewEpoch { epoch: self.epoch } });
            }
            Phase::Broadcasting => {
                if accepted_epoch > self.epoch {
                    self.abdicate("follower accepted a higher epoch", out);
                } else if accepted_epoch == self.epoch {
                    // Fast path: the follower already accepted our epoch
                    // (we are its unique established leader); skip straight
                    // to synchronization using the zxid it announced.
                    self.peers.insert(
                        from,
                        Peer {
                            state: PeerState::InfoReceived { new_epoch_sent: true },
                            last_contact_ms: self.now_ms,
                        },
                    );
                    self.start_sync(from, last_zxid, out);
                } else {
                    self.peers.insert(
                        from,
                        Peer {
                            state: PeerState::InfoReceived { new_epoch_sent: true },
                            last_contact_ms: self.now_ms,
                        },
                    );
                    out.push(Action::Send {
                        to: from,
                        msg: Message::NewEpoch { epoch: self.epoch },
                    });
                }
            }
            Phase::Defunct => {}
        }
    }

    /// Phase 1a completion check: with a quorum of infos, choose `e'` and
    /// durably adopt it before proposing.
    fn maybe_finish_info_collection(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::CollectingInfo {
            return;
        }
        let voters: BTreeSet<ServerId> = self.info_votes.keys().copied().collect();
        if !self.config.is_quorum(&voters) {
            return;
        }
        let max_accepted = self.info_votes.values().copied().max().unwrap_or(Epoch::ZERO);
        self.epoch = max_accepted.next();
        self.accepted_epoch = self.epoch;
        self.phase = Phase::PersistingEpoch;
        let token = self.token(Pending::SendNewEpoch);
        out.push(Action::Persist { token, req: PersistRequest::AcceptedEpoch(self.epoch) });
    }

    fn on_ack_epoch(
        &mut self,
        from: ServerId,
        current_epoch: Epoch,
        last_zxid: Zxid,
        out: &mut Vec<Action>,
    ) {
        match self.phase {
            Phase::CollectingAckEpoch | Phase::Establishing | Phase::Broadcasting => {}
            _ => return, // too early; stale traffic
        }
        let expected = matches!(
            self.peers.get(&from).map(|p| &p.state),
            Some(PeerState::InfoReceived { new_epoch_sent: true })
        );
        if !expected {
            return;
        }
        // Before establishment, the leader must own the freshest history
        // (FLE guarantees it); otherwise it steps down and lets the fresher
        // process win — adopting history mid-establishment would be the
        // paper's "leader adopts Ihistory" step, which ZooKeeper avoids by
        // electing the freshest process in the first place. Once
        // established, a follower with a longer-but-stale history is simply
        // truncated: our establishment quorum proves its surplus
        // transactions never committed.
        if self.phase != Phase::Broadcasting && (current_epoch, last_zxid) > self.self_vote {
            self.abdicate("a follower has a fresher history", out);
            return;
        }
        if current_epoch > self.epoch {
            self.abdicate("a follower adopted a higher epoch", out);
            return;
        }
        self.ack_epoch.insert(from);
        if self.phase == Phase::CollectingAckEpoch {
            // Park the peer with its zxid; syncs are planned when the
            // epoch-ack quorum completes.
            self.peers.get_mut(&from).expect("peer exists").state =
                PeerState::EpochAcked { last_zxid };
            self.maybe_begin_establishment(out);
            return;
        }
        // Established or establishing: sync this follower right away.
        self.start_sync(from, last_zxid, out);
    }

    /// Phase 1b completion check: with a quorum of epoch acks (self
    /// included — our info and epoch adoption count), begin Phase 2.
    fn maybe_begin_establishment(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::CollectingAckEpoch {
            return;
        }
        let mut ackers = self.ack_epoch.clone();
        ackers.insert(self.id);
        if !self.config.is_quorum(&ackers) {
            return;
        }
        self.phase = Phase::Establishing;
        self.current_epoch = self.epoch;
        let token = self.token(Pending::EstablishSelf);
        out.push(Action::Persist { token, req: PersistRequest::CurrentEpoch(self.epoch) });
        // Plan synchronization for every follower that acked the epoch.
        let parked: Vec<(ServerId, Zxid)> = self
            .peers
            .iter()
            .filter_map(|(&id, p)| match p.state {
                PeerState::EpochAcked { last_zxid } => Some((id, last_zxid)),
                _ => None,
            })
            .collect();
        for (id, lz) in parked {
            self.start_sync(id, lz, out);
        }
    }

    /// Phase 2 per-follower: plan DIFF/TRUNC/SNAP and stream it, ending
    /// with `NEWLEADER`.
    fn start_sync(&mut self, from: ServerId, follower_last: Zxid, out: &mut Vec<Action>) {
        let plan = self.history.plan_sync(follower_last, self.config.snap_threshold);
        match plan {
            SyncPlan::Snap => {
                // Lag behind the compaction horizon (or past the SNAP
                // threshold): serve from the retained snapshot when it can
                // still be stitched to the log suffix, otherwise ask the
                // application for a fresh one.
                let retained = self
                    .retained_snapshot
                    .clone()
                    .filter(|&(_, z)| z >= self.history.base() && z <= self.history.last_zxid());
                if let Some((snap, z)) = retained {
                    self.serve_snapshot(from, snap, z, out);
                } else {
                    self.peers.get_mut(&from).expect("peer exists").state =
                        PeerState::AwaitingSnapshot;
                    if !self.snapshot_pending {
                        self.snapshot_pending = true;
                        out.push(Action::TakeSnapshot);
                    }
                }
            }
            SyncPlan::Diff { txns } => {
                self.metrics.diff_syncs.inc();
                let mut chunks: VecDeque<Vec<Txn>> = sync_chunks(txns).into();
                let first = chunks.pop_front().expect("at least one chunk");
                self.charge_sync(chunk_cost(&first));
                self.ship_or_pace(from, Message::SyncDiff { txns: first }, chunks, out);
            }
            SyncPlan::Trunc { truncate_to, txns } => {
                self.metrics.diff_syncs.inc();
                let mut chunks: VecDeque<Vec<Txn>> = sync_chunks(txns).into();
                let first = chunks.pop_front().expect("at least one chunk");
                self.charge_sync(chunk_cost(&first));
                self.ship_or_pace(
                    from,
                    Message::SyncTrunc { truncate_to, txns: first },
                    chunks,
                    out,
                );
            }
        }
    }

    /// Opens a SNAP stream to `to` from `snapshot` (covering up to
    /// `zxid`), with the retained log suffix chunked behind it.
    fn serve_snapshot(&mut self, to: ServerId, snapshot: Bytes, zxid: Zxid, out: &mut Vec<Action>) {
        self.metrics.snap_syncs.inc();
        let mut chunks: VecDeque<Vec<Txn>> =
            sync_chunks(self.history.txns_after(zxid).to_vec()).into();
        let first = chunks.pop_front().expect("at least one chunk");
        self.charge_sync(snapshot.len() as u64 + chunk_cost(&first));
        self.ship_or_pace(
            to,
            Message::SyncSnap { snapshot, snapshot_zxid: zxid, txns: first },
            chunks,
            out,
        );
    }

    /// Sends a plan's opening message and disposes of its unshipped chunk
    /// tail: emits it all at once when pacing is disabled (or nothing
    /// remains), otherwise parks it in a paced session gated on per-chunk
    /// `SyncAck`s and the shared token bucket. The opening message stays
    /// retransmittable until acked.
    fn ship_or_pace(
        &mut self,
        from: ServerId,
        opening: Message,
        remaining: VecDeque<Vec<Txn>>,
        out: &mut Vec<Action>,
    ) {
        out.push(Action::Send { to: from, msg: opening.clone() });
        if self.config.sync_rate_bytes_per_sec == 0 || remaining.is_empty() {
            for chunk in remaining {
                self.charge_sync(chunk_cost(&chunk));
                out.push(Action::Send { to: from, msg: Message::SyncDiff { txns: chunk } });
            }
            self.finish_sync_stream(from, out);
        } else {
            let end = sync_msg_end(&opening).expect("paced opening chunk is non-empty");
            let now_ms = self.now_ms;
            self.peers.get_mut(&from).expect("peer exists").state = PeerState::Syncing {
                queue: Vec::new(),
                plan_end: self.history.last_zxid(),
                session: SyncSession {
                    remaining,
                    outstanding: Some((vec![opening], end)),
                    throttled: false,
                    last_progress_ms: now_ms,
                    newleader_sent: false,
                    last_gap: None,
                    gap_growth: 0,
                    express: false,
                },
            };
        }
    }

    /// Deducts sync payload from the token bucket and accounts it. The
    /// opening message of every plan is charged but never deferred, so a
    /// sync always starts promptly; the bucket going (transiently)
    /// negative just delays the paced tail.
    fn charge_sync(&mut self, cost: u64) {
        self.sync_tokens = self.sync_tokens.saturating_sub(cost);
        self.metrics.sync_bytes_sent.add(cost);
    }

    fn finish_sync_stream(&mut self, from: ServerId, out: &mut Vec<Action>) {
        out.push(Action::Send { to: from, msg: Message::NewLeader { epoch: self.epoch } });
        let now_ms = self.now_ms;
        self.peers.get_mut(&from).expect("peer exists").state = PeerState::Syncing {
            queue: Vec::new(),
            plan_end: self.history.last_zxid(),
            session: SyncSession::shipped(now_ms),
        };
    }

    /// A follower acknowledged a sync chunk: release the next one if the
    /// token bucket allows, else mark the session throttled for `Tick`.
    /// Acks below the outstanding transmission's end are stale (a
    /// retransmitted chunk produces one per copy received) and ignored.
    fn on_sync_ack(&mut self, from: ServerId, last_zxid: Zxid, out: &mut Vec<Action>) {
        let now_ms = self.now_ms;
        let Some(peer) = self.peers.get_mut(&from) else { return };
        let PeerState::Syncing { session, .. } = &mut peer.state else { return };
        match &session.outstanding {
            Some((_, end)) if last_zxid >= *end => {
                session.outstanding = None;
                session.last_progress_ms = now_ms;
            }
            _ => return,
        }
        self.try_release_chunk(from, out);
    }

    /// Ships the next chunk of `from`'s paced session when it is neither
    /// waiting for an ack nor out of budget. When the planned chunks
    /// drain, the stream chases the live commit frontier: a large gap
    /// (history appended while the sync was in flight) extends the paced
    /// stream with fresh chunks, a small one rides along with `NEWLEADER`
    /// in the final transmission. That keeps the activation flush bounded
    /// to the post-`NEWLEADER` round-trip window instead of every
    /// proposal broadcast during the whole catch-up.
    fn try_release_chunk(&mut self, from: ServerId, out: &mut Vec<Action>) {
        let burst = config_sync_burst(&self.config);
        let tokens = self.sync_tokens;
        let epoch = self.epoch;
        let now_ms = self.now_ms;
        let history_end = self.history.last_zxid();
        let Some(peer) = self.peers.get_mut(&from) else { return };
        let PeerState::Syncing { plan_end, session, .. } = &mut peer.state else { return };
        if session.outstanding.is_some() {
            return;
        }
        let Some(front) = session.remaining.front() else { return };
        // `cost.min(burst)` guarantees progress even for a chunk larger
        // than the bucket (a single oversized transaction): it ships once
        // the bucket is full. Express chases skip the gate (but are still
        // charged): deferring them would livelock the catch-up.
        let mut cost = chunk_cost(front);
        if !session.express && tokens < cost.min(burst) {
            session.throttled = true;
            return;
        }
        session.throttled = false;
        let chunk = session.remaining.pop_front().expect("chunk peeked above");
        let mut end = chunk.last().expect("paced chunks are non-empty").zxid;
        let mut msgs = vec![Message::SyncDiff { txns: chunk }];
        if session.express {
            // Express transmissions fill up to the burst budget: the
            // chase must outrun the live append rate to terminate, and
            // per-turn output stays bounded by the operator's burst.
            while cost < burst {
                let Some(front) = session.remaining.front() else { break };
                let next = chunk_cost(front);
                if cost + next > burst {
                    break;
                }
                let txns = session.remaining.pop_front().expect("chunk peeked above");
                end = txns.last().expect("paced chunks are non-empty").zxid;
                cost += next;
                msgs.push(Message::SyncDiff { txns });
            }
        }
        if session.remaining.is_empty() {
            let tail = self.history.txns_after(*plan_end);
            let gap = chunk_cost(tail);
            if gap > SYNC_CHUNK_BYTES as u64 {
                session.remaining = sync_chunks(tail.to_vec()).into();
                // Convergence guard: a gap that keeps growing across
                // extensions means the configured rate sits below the
                // live append byte rate — no amount of throttled chasing
                // finishes that stream. Go express rather than livelock.
                match session.last_gap {
                    Some(prev) if gap >= prev => {
                        session.gap_growth = session.gap_growth.saturating_add(1)
                    }
                    _ => session.gap_growth = 0,
                }
                if session.gap_growth >= 2 {
                    session.express = true;
                }
                session.last_gap = Some(gap);
            } else {
                if let Some(last) = tail.last() {
                    end = last.zxid;
                    for txns in sync_chunks(tail.to_vec()) {
                        if txns.is_empty() {
                            continue;
                        }
                        cost += chunk_cost(&txns);
                        msgs.push(Message::SyncDiff { txns });
                    }
                }
                msgs.push(Message::NewLeader { epoch });
                session.newleader_sent = true;
            }
            *plan_end = history_end;
        }
        for msg in &msgs {
            out.push(Action::Send { to: from, msg: msg.clone() });
        }
        session.outstanding = Some((msgs, end));
        session.last_progress_ms = now_ms;
        self.charge_sync(cost);
    }

    /// Tick-driven half of sync pacing: refill the token bucket from the
    /// configured rate, retry every throttled session, and retransmit
    /// streams that stalled for a follower-timeout (the link swallowed a
    /// chunk, its ack, or the trailing `NEWLEADER` — without this, leader
    /// and follower ping-pong forever with the sync wedged).
    fn pace_syncs(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        let rate = self.config.sync_rate_bytes_per_sec;
        let dt_ms = now_ms.saturating_sub(self.last_sync_refill_ms);
        self.last_sync_refill_ms = now_ms;
        if rate == 0 {
            return;
        }
        if dt_ms > 0 {
            let refill = rate.saturating_mul(dt_ms) / 1000;
            self.sync_tokens =
                self.sync_tokens.saturating_add(refill).min(config_sync_burst(&self.config));
        }
        let stall_ms = self.config.follower_timeout_ms;
        enum Wake {
            /// Tokens may have refilled; retry a throttled release.
            Retry,
            /// The outstanding transmission stalled; resend it verbatim.
            Resend(Vec<Message>),
            /// Fully shipped but `ACKNEWLEADER` never came; renudge with
            /// `NEWLEADER` (a stale re-ack triggers a sync restart).
            Nudge,
        }
        let wakes: Vec<(ServerId, Wake)> = self
            .peers
            .iter()
            .filter_map(|(&id, p)| {
                let PeerState::Syncing { session, .. } = &p.state else { return None };
                let stalled = now_ms.saturating_sub(session.last_progress_ms) >= stall_ms;
                match &session.outstanding {
                    Some((msgs, _)) if stalled => Some((id, Wake::Resend(msgs.clone()))),
                    None if session.remaining.is_empty() && stalled => Some((id, Wake::Nudge)),
                    None if session.throttled => Some((id, Wake::Retry)),
                    _ => None,
                }
            })
            .collect();
        let epoch = self.epoch;
        for (id, wake) in wakes {
            match wake {
                Wake::Retry => self.try_release_chunk(id, out),
                Wake::Resend(msgs) => {
                    // Accounted in the wire-bytes metric but exempt from
                    // the bucket: recovery traffic is rare and bounded
                    // (one transmission per stall window), and charging it
                    // would let one dead follower starve live catch-ups.
                    for msg in msgs {
                        self.metrics.sync_bytes_sent.add(sync_wire_cost(&msg));
                        out.push(Action::Send { to: id, msg });
                    }
                    self.stamp_sync_progress(id, now_ms);
                }
                Wake::Nudge => {
                    out.push(Action::Send { to: id, msg: Message::NewLeader { epoch } });
                    self.stamp_sync_progress(id, now_ms);
                }
            }
        }
    }

    fn stamp_sync_progress(&mut self, id: ServerId, now_ms: u64) {
        if let Some(Peer { state: PeerState::Syncing { session, .. }, .. }) =
            self.peers.get_mut(&id)
        {
            session.last_progress_ms = now_ms;
        }
    }

    /// Peers with an open catch-up sync and the work left to ship them.
    /// Peers awaiting the application snapshot report zero remaining
    /// (their stream has not been planned yet).
    pub fn syncing_peers(&self) -> Vec<SyncProgress> {
        self.peers
            .iter()
            .filter_map(|(&id, p)| match &p.state {
                PeerState::Syncing { session, .. } => Some(SyncProgress {
                    peer: id,
                    chunks_remaining: session.remaining.len() as u64,
                    bytes_remaining: session.remaining.iter().map(|c| chunk_cost(c)).sum(),
                }),
                PeerState::AwaitingSnapshot => {
                    Some(SyncProgress { peer: id, chunks_remaining: 0, bytes_remaining: 0 })
                }
                _ => None,
            })
            .collect()
    }

    /// Per-follower replication lag against this leader's committed
    /// frontier — the `/health` lag table and `core.follower_lag.<id>`
    /// gauges read this at batch boundaries. One entry per connected peer
    /// that is past epoch negotiation (active or catch-up syncing); O(#peers
    /// + #unshipped chunks), never O(history).
    pub fn follower_lags(&self) -> Vec<FollowerLag> {
        let committed = self.history.last_committed();
        self.peers
            .iter()
            .filter_map(|(&id, p)| match &p.state {
                PeerState::Active { acked, .. } => Some(FollowerLag {
                    peer: id,
                    acked: Some(*acked),
                    lag_txns: counter_gap(*acked, committed),
                    syncing: false,
                }),
                PeerState::Syncing { session, plan_end, .. } => {
                    let queued: u64 = session.remaining.iter().map(|c| c.len() as u64).sum();
                    Some(FollowerLag {
                        peer: id,
                        acked: None,
                        lag_txns: counter_gap(*plan_end, committed).map(|live| live + queued),
                        syncing: true,
                    })
                }
                PeerState::AwaitingSnapshot => {
                    Some(FollowerLag { peer: id, acked: None, lag_txns: None, syncing: true })
                }
                _ => None,
            })
            .collect()
    }

    fn on_snapshot_ready(&mut self, snapshot: Bytes, zxid: Zxid, out: &mut Vec<Action>) {
        self.snapshot_pending = false;
        // A fresh application snapshot supersedes whatever compaction
        // left behind.
        self.retained_snapshot = Some((snapshot.clone(), zxid));
        let waiting: Vec<ServerId> = self
            .peers
            .iter()
            .filter_map(|(&id, p)| match p.state {
                PeerState::AwaitingSnapshot => Some(id),
                _ => None,
            })
            .collect();
        for id in waiting {
            self.serve_snapshot(id, snapshot.clone(), zxid, out);
        }
    }

    fn on_ack_new_leader(
        &mut self,
        from: ServerId,
        epoch: Epoch,
        last_zxid: Zxid,
        out: &mut Vec<Action>,
    ) {
        if epoch != self.epoch {
            return;
        }
        let plan_end = match self.peers.get(&from).map(|p| &p.state) {
            Some(PeerState::Syncing { plan_end, .. }) => *plan_end,
            _ => return,
        };
        if last_zxid < plan_end {
            // The follower adopted the epoch but its history stops short
            // of the sync plan: part of the stream was lost in transit
            // (e.g. a connection reset swallowed the DIFF while the
            // trailing NEWLEADER survived on the fresh link). Activating
            // it would hand it a commit watermark covering transactions
            // it does not hold — restart the sync from what it actually
            // has instead.
            self.start_sync(from, last_zxid, out);
            return;
        }
        self.ack_ld.insert(from);
        match self.phase {
            Phase::Establishing => {
                self.maybe_establish(out);
                // If we just established, `maybe_establish` activated all
                // acked peers, including this one.
            }
            Phase::Broadcasting => self.activate_peer(from, last_zxid, out),
            _ => {}
        }
    }

    /// Phase 2 completion check: quorum of `ACKNEWLEADER` (self counts
    /// once its `currentEpoch` write is durable).
    fn maybe_establish(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::Establishing || !self.self_established {
            return;
        }
        let mut ackers = self.ack_ld.clone();
        ackers.insert(self.id);
        if !self.config.is_quorum(&ackers) {
            return;
        }
        self.phase = Phase::Broadcasting;
        // COMMIT-LD: the initial history is committed and delivered.
        let initial_end = self.history.last_zxid();
        if initial_end > self.history.last_committed() {
            self.history.mark_committed(initial_end);
        }
        deliver_committed(&self.history, &mut self.delivered_to, &self.metrics, &self.tracer, out);
        out.push(Action::Activated { epoch: self.epoch });
        let acked: Vec<ServerId> = self
            .peers
            .iter()
            .filter(|(id, p)| {
                matches!(p.state, PeerState::Syncing { .. }) && self.ack_ld.contains(id)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in acked {
            // The follower's sync covered the initial history; use its
            // plan end as the ack watermark baseline.
            let plan_end = match &self.peers[&id].state {
                PeerState::Syncing { plan_end, .. } => *plan_end,
                _ => unreachable!(),
            };
            self.activate_peer(id, plan_end, out);
        }
    }

    /// Sends `UPTODATE`, flushes the queued traffic, and starts counting
    /// the peer's acks.
    fn activate_peer(&mut self, from: ServerId, acked: Zxid, out: &mut Vec<Action>) {
        let peer = self.peers.get_mut(&from).expect("peer exists");
        // Fresh activations start on the direct path (`relay_ready:
        // false`); the first ack proves the follower reached its
        // broadcast phase and promotes it into the relay plan.
        let now_ms = self.now_ms;
        let activated = PeerState::Active { acked, relay_ready: false, last_progress_ms: now_ms };
        let (queue, plan_end) = match std::mem::replace(&mut peer.state, activated) {
            PeerState::Syncing { queue, plan_end, .. } => (queue, plan_end),
            other => {
                peer.state = other;
                return;
            }
        };
        let commit_to = self.history.last_committed().min(plan_end);
        out.push(Action::Send { to: from, msg: Message::UpToDate { commit_to } });
        for msg in queue {
            out.push(Action::Send { to: from, msg });
        }
        self.try_commit(out);
    }

    fn on_client_request(&mut self, data: Bytes, out: &mut Vec<Action>) {
        if self.phase != Phase::Broadcasting {
            out.push(Action::ClientRequestRejected { data, reason: RejectReason::NotPrimary });
            return;
        }
        if self.pending_requests.len() >= self.config.request_queue_limit {
            self.metrics.requests_rejected.inc();
            out.push(Action::ClientRequestRejected { data, reason: RejectReason::Overloaded });
            return;
        }
        self.pending_requests.push_back(data);
        self.pump_proposals(out);
    }

    /// Proposes queued requests while the outstanding window allows.
    /// Returns how many proposals went out; each carries the current
    /// commit watermark, so a caller that just advanced it can skip the
    /// standalone `COMMIT` frame (see [`Leader::try_commit`]).
    fn pump_proposals(&mut self, out: &mut Vec<Action>) -> usize {
        let commit_up_to = self.history.last_committed();
        let mut pumped = 0;
        while self.outstanding < self.config.max_outstanding {
            let Some(data) = self.pending_requests.pop_front() else { break };
            self.counter = self.counter.checked_add(1).expect("zxid counter exhausted");
            let zxid = Zxid::new(self.epoch, self.counter);
            let txn = Txn { zxid, data };
            self.history.append(txn.clone());
            self.outstanding += 1;
            pumped += 1;
            self.metrics.proposals_proposed.inc();
            self.tracer.instant(Stage::ProposeEnqueue, zxid.0, 0);
            self.propose_times.insert(zxid, self.now_ms);
            let token = self.token(Pending::SelfAck(zxid));
            out.push(Action::Persist { token, req: PersistRequest::AppendTxns(vec![txn.clone()]) });
            self.broadcast(Message::Propose { txn, commit_up_to }, out);
        }
        self.metrics.outstanding_depth.set(self.outstanding as i64);
        pumped
    }

    /// Sends to active peers; queues for syncing peers (FIFO per peer).
    ///
    /// Two or more targets produce a single [`Action::Broadcast`]
    /// (targets in id order) so the driver can encode the message once
    /// and fan out shared handles; a lone target stays a plain
    /// [`Action::Send`].
    ///
    /// Under an active relay plan the fan-out splits: members of a relay
    /// group are skipped here (their relay forwards to them), relays get
    /// the message encoded once and wrapped in a [`Message::Forward`]
    /// (which they both consume and re-forward verbatim), and everyone
    /// else stays on the plain direct path. Leader socket writes per
    /// transaction drop from O(N) to O(√N).
    fn broadcast(&mut self, msg: Message, out: &mut Vec<Action>) {
        let mut direct: Vec<ServerId> = Vec::with_capacity(self.peers.len());
        for (&id, peer) in self.peers.iter_mut() {
            match &mut peer.state {
                PeerState::Active { .. }
                    if !self.relay.parent.contains_key(&id)
                        && !self.relay.groups.contains_key(&id) =>
                {
                    direct.push(id);
                }
                // Until `NEWLEADER` ships, the paced stream covers new
                // history itself by extending from the log (see
                // `try_release_chunk`); queueing the proposal too would
                // duplicate it and grow the activation flush without
                // bound under sustained load. Dropped COMMITs are
                // covered by `UPTODATE`'s commit watermark.
                PeerState::Syncing { queue, session, .. } if session.newleader_sent => {
                    queue.push(msg.clone());
                }
                _ => {}
            }
        }
        if !self.relay.groups.is_empty() {
            // One encode serves every relay *and* every hop below them:
            // the relays re-forward these exact bytes.
            let wrapped = Message::Forward { inner: msg.encode().into() };
            let relays: Vec<ServerId> = self.relay.groups.keys().copied().collect();
            match relays.len() {
                1 => out.push(Action::Send { to: relays[0], msg: wrapped }),
                _ => out.push(Action::Broadcast { to: relays, msg: wrapped }),
            }
        }
        match direct.len() {
            0 => {}
            1 => out.push(Action::Send { to: direct[0], msg }),
            _ => out.push(Action::Broadcast { to: direct, msg }),
        }
    }

    fn on_ack(&mut self, from: ServerId, zxid: Zxid, out: &mut Vec<Action>) {
        self.metrics.acks_received.inc();
        self.tracer.instant(Stage::AckRx, zxid.0, from.0);
        if zxid > self.history.last_zxid() {
            self.abdicate("ack beyond proposed history", out);
            return;
        }
        let Some(peer) = self.peers.get_mut(&from) else { return };
        let mut advanced = false;
        if let PeerState::Active { acked, relay_ready, last_progress_ms } = &mut peer.state {
            if !*relay_ready {
                // First ack since activation: the follower is provably in
                // its broadcast phase (acks are sent nowhere else), so it
                // can participate in the relay tree.
                *relay_ready = true;
                self.topology_dirty = true;
            }
            if zxid > *acked {
                *acked = zxid;
                *last_progress_ms = self.now_ms;
                advanced = true;
            }
        }
        if advanced {
            self.try_commit(out);
        }
    }

    fn on_persisted(&mut self, token: PersistToken, out: &mut Vec<Action>) {
        let done: Vec<PersistToken> = self.pending.range(..=token).map(|(&t, _)| t).collect();
        let mut best_self_ack: Option<Zxid> = None;
        for t in done {
            match self.pending.remove(&t).expect("token present") {
                Pending::SendNewEpoch => {
                    if self.phase != Phase::PersistingEpoch {
                        continue;
                    }
                    self.phase = Phase::CollectingAckEpoch;
                    let targets: Vec<ServerId> = self
                        .peers
                        .iter_mut()
                        .filter_map(|(&id, p)| match &mut p.state {
                            PeerState::InfoReceived { new_epoch_sent } if !*new_epoch_sent => {
                                *new_epoch_sent = true;
                                Some(id)
                            }
                            _ => None,
                        })
                        .collect();
                    for id in targets {
                        out.push(Action::Send {
                            to: id,
                            msg: Message::NewEpoch { epoch: self.epoch },
                        });
                    }
                    // Our own epoch ack; a single-server ensemble can now
                    // proceed all the way to establishment.
                    self.maybe_begin_establishment(out);
                }
                Pending::EstablishSelf => {
                    self.self_established = true;
                    self.maybe_establish(out);
                }
                Pending::SelfAck(zxid) => {
                    best_self_ack = Some(best_self_ack.map_or(zxid, |b| b.max(zxid)));
                }
            }
        }
        if let Some(zxid) = best_self_ack {
            if zxid > self.self_acked {
                self.self_acked = zxid;
                self.try_commit(out);
            }
        }
    }

    /// Advances the commit watermark to the highest zxid acked by a quorum
    /// (counting our own durable log as an ack).
    fn try_commit(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::Broadcasting {
            return;
        }
        let last_committed = self.history.last_committed();
        let mut watermarks: Vec<(ServerId, Zxid)> = vec![(self.id, self.self_acked)];
        for (&id, p) in &self.peers {
            if let PeerState::Active { acked, .. } = p.state {
                watermarks.push((id, acked));
            }
        }
        let mut candidates: Vec<Zxid> =
            watermarks.iter().map(|&(_, z)| z).filter(|&z| z > last_committed).collect();
        candidates.sort_unstable();
        candidates.dedup();
        let committed = candidates.into_iter().rev().find(|&z| {
            let supporters: BTreeSet<ServerId> =
                watermarks.iter().filter(|&&(_, w)| w >= z).map(|&(id, _)| id).collect();
            self.config.is_quorum(&supporters)
        });
        let Some(z) = committed else { return };
        // Account outstanding completions and emit per-txn commit events.
        for txn in self.history.txns_after(last_committed) {
            if txn.zxid > z {
                break;
            }
            if txn.zxid.epoch() == self.epoch {
                self.outstanding -= 1;
            }
            if let Some(proposed_ms) = self.propose_times.remove(&txn.zxid) {
                self.metrics.quorum_ack_latency_ms.record(self.now_ms.saturating_sub(proposed_ms));
            }
            self.tracer.instant(Stage::Quorum, txn.zxid.0, 0);
            out.push(Action::Committed { zxid: txn.zxid });
        }
        self.metrics.outstanding_depth.set(self.outstanding as i64);
        self.history.mark_committed(z);
        deliver_committed(&self.history, &mut self.delivered_to, &self.metrics, &self.tracer, out);
        // One cumulative COMMIT per quorum crossing — and none at all when
        // the window reopens and new proposals go out in this same
        // `handle()` call: every PROPOSE piggybacks the watermark, so the
        // standalone frame would be pure overhead on a saturated pipeline.
        // (`broadcast` and `pump_proposals` reach the same peer set, so a
        // pumped proposal implies every active and syncing peer saw `z`.)
        // The watermark reaches the followers either way (standalone COMMIT
        // or piggybacked on the pumped PROPOSEs).
        self.tracer.instant(Stage::CommitOut, z.0, 0);
        if self.pump_proposals(out) == 0 {
            self.broadcast(Message::Commit { zxid: z }, out);
        }
    }

    /// Drops every plan edge touching `id` (it disconnected or is
    /// re-registering). Members whose relay vanished keep their `parent`
    /// entry until the rebuild — the rebuild's diff is what generates
    /// their switch replay, and `handle()` rebuilds before returning, so
    /// the stale edge never routes a frame.
    fn purge_from_plan(&mut self, id: ServerId) {
        let mut changed = false;
        if self.relay.groups.remove(&id).is_some() {
            changed = true;
        }
        if let Some(relay) = self.relay.parent.remove(&id) {
            if let Some(group) = self.relay.groups.get_mut(&relay) {
                group.retain(|&m| m != id);
            }
            changed = true;
        }
        if changed {
            self.topology_dirty = true;
        }
    }

    /// Rebuilds the relay dissemination plan from the current set of
    /// relay-ready followers and emits the switch traffic for every
    /// follower whose path changed.
    ///
    /// Grouping: ready followers in id order, group size ⌈√m⌉, the first
    /// of each group is its relay — ⌈m / ⌈√m⌉⌉ leader writes per frame.
    ///
    /// Path-switch safety: a follower's new path replays our view of its
    /// history (`txns_after(acked)`) *on the new path itself*, so the
    /// new stream is self-contained — nothing still in flight on the old
    /// path is needed, and each per-path stream stays gap-free (FIFO
    /// channels). Replay frames overlap whatever the follower already
    /// holds; both automaton sides skip duplicates benignly.
    /// `RELAYASSIGN` frames are emitted before the replays they govern
    /// and ride the same FIFO channel, so a relay always learns its
    /// group before the first frame it must forward.
    fn recompute_topology(&mut self, out: &mut Vec<Action>) {
        self.topology_dirty = false;
        let old = std::mem::take(&mut self.relay);
        if self.phase != Phase::Broadcasting {
            return;
        }
        let ready: Vec<ServerId> = self
            .peers
            .iter()
            .filter_map(|(&id, p)| match p.state {
                PeerState::Active { relay_ready: true, .. } => Some(id),
                _ => None,
            })
            .collect();
        if self.config.topology == Topology::Relay && ready.len() >= MIN_RELAY_FANOUT {
            let group_size = (ready.len() as f64).sqrt().ceil() as usize;
            for chunk in ready.chunks(group_size) {
                if chunk.len() < 2 {
                    continue; // a lone trailing follower stays direct
                }
                let relay = chunk[0];
                let members = chunk[1..].to_vec();
                for &m in &members {
                    self.relay.parent.insert(m, relay);
                }
                self.relay.groups.insert(relay, members);
            }
        }
        // Assignments first: every relay whose group is new or changed,
        // and an empty assignment to demote relays that lost theirs.
        for (&relay, members) in &self.relay.groups {
            if old.groups.get(&relay) != Some(members) {
                out.push(Action::Send {
                    to: relay,
                    msg: Message::RelayAssign { members: members.clone() },
                });
            }
        }
        for &relay in old.groups.keys() {
            if !self.relay.groups.contains_key(&relay) && self.peers.contains_key(&relay) {
                out.push(Action::Send { to: relay, msg: Message::RelayAssign { members: vec![] } });
            }
        }
        // Replays for every follower whose path changed. Switches onto a
        // relay batch per relay — one pass from the smallest member ack
        // covers the whole group, the rest skip duplicates.
        let commit_up_to = self.history.last_committed();
        let mut via_relay: BTreeMap<ServerId, Zxid> = BTreeMap::new();
        let mut to_direct: Vec<(ServerId, Zxid)> = Vec::new();
        for (&id, p) in &self.peers {
            let PeerState::Active { acked, .. } = p.state else { continue };
            let old_parent = old.parent.get(&id).copied();
            let new_parent = self.relay.parent.get(&id).copied();
            if old_parent == new_parent {
                continue;
            }
            self.metrics.relay_reassignments.inc();
            match new_parent {
                Some(relay) => {
                    let from = via_relay.entry(relay).or_insert(acked);
                    *from = (*from).min(acked);
                }
                None => to_direct.push((id, acked)),
            }
        }
        for (id, acked) in to_direct {
            for txn in self.history.txns_after(acked) {
                out.push(Action::Send {
                    to: id,
                    msg: Message::Propose { txn: txn.clone(), commit_up_to },
                });
            }
        }
        for (relay, from) in via_relay {
            for txn in self.history.txns_after(from) {
                let propose = Message::Propose { txn: txn.clone(), commit_up_to };
                out.push(Action::Send {
                    to: relay,
                    msg: Message::Forward { inner: propose.encode().into() },
                });
            }
        }
    }

    /// The current relay plan as `(relay, members)` pairs, for
    /// observability (`/health`). Empty under star topology, below the
    /// relay fan-out threshold, or before any follower is relay-ready.
    pub fn relay_topology(&self) -> Vec<(ServerId, Vec<ServerId>)> {
        self.relay.groups.iter().map(|(&r, members)| (r, members.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Input;

    const ME: ServerId = ServerId(1);
    const F2: ServerId = ServerId(2);
    const F3: ServerId = ServerId(3);

    fn cfg() -> ClusterConfig {
        ClusterConfig::majority([ServerId(1), ServerId(2), ServerId(3)])
    }

    fn msg(from: ServerId, m: Message) -> Input {
        Input::Message { from, msg: m }
    }

    /// Completes every persist in `actions` immediately, returning the
    /// follow-up actions.
    fn complete_persists(l: &mut Leader, actions: &[Action]) -> Vec<Action> {
        let mut out = Vec::new();
        for a in actions {
            if let Action::Persist { token, .. } = a {
                out.extend(l.handle(Input::Persisted { token: *token }));
            }
        }
        out
    }

    fn sends_to(actions: &[Action], to: ServerId) -> Vec<&Message> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to: t, msg } if *t == to => Some(msg),
                Action::Broadcast { to: ts, msg } if ts.contains(&to) => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// Drives a fresh 3-ensemble leader to Broadcasting with followers 2
    /// and 3 attached (instant persistence everywhere).
    fn established_leader() -> Leader {
        let (mut l, init) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        assert!(init.is_empty(), "needs a quorum of infos first");
        // Follower infos arrive.
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        // Quorum of infos (self + f2): epoch chosen, persist requested.
        assert!(a.iter().any(|x| matches!(
            x,
            Action::Persist { req: PersistRequest::AcceptedEpoch(e), .. } if *e == Epoch(1)
        )));
        let a = complete_persists(&mut l, &a);
        // NEWEPOCH went to f2.
        assert!(matches!(sends_to(&a, F2)[0], Message::NewEpoch { epoch: Epoch(1) }));
        assert_eq!(l.status(), LeaderStatus::CollectingAckEpoch);
        // f3's info arrives late; it gets NEWEPOCH directly.
        let a3 = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a3, F3)[0], Message::NewEpoch { epoch: Epoch(1) }));
        // Epoch acks from both: establishment begins on quorum.
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert_eq!(l.status(), LeaderStatus::Establishing);
        // Sync stream: empty diff + NEWLEADER to f2.
        let f2_msgs = sends_to(&a, F2);
        assert!(matches!(f2_msgs[0], Message::SyncDiff { .. }));
        assert!(matches!(f2_msgs[1], Message::NewLeader { epoch: Epoch(1) }));
        let a2 = complete_persists(&mut l, &a); // currentEpoch persisted
        assert!(a2.is_empty(), "self ack alone is not a quorum");
        let a = l.handle(msg(
            F3,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a, F3)[1], Message::NewLeader { .. }));
        // f2 acks NEWLEADER: with self, that is a quorum → established.
        let a = l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(a.iter().any(|x| matches!(x, Action::Activated { epoch: Epoch(1) })));
        assert!(matches!(sends_to(&a, F2)[0], Message::UpToDate { .. }));
        assert!(l.is_established());
        // f3 finishes too.
        let a = l.handle(msg(F3, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(matches!(sends_to(&a, F3)[0], Message::UpToDate { .. }));
        assert_eq!(l.active_followers().count(), 2);
        l
    }

    #[test]
    fn establishment_walkthrough() {
        let l = established_leader();
        assert_eq!(l.epoch(), Epoch(1));
        assert_eq!(l.status(), LeaderStatus::Broadcasting);
    }

    #[test]
    fn proposal_lifecycle_self_ack_plus_one_follower_commits() {
        let mut l = established_leader();
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        let zxid = Zxid::new(Epoch(1), 1);
        // Propose fans out to both followers; persist requested.
        assert!(matches!(sends_to(&a, F2)[0], Message::Propose { txn, .. } if txn.zxid == zxid));
        assert!(matches!(sends_to(&a, F3)[0], Message::Propose { txn, .. } if txn.zxid == zxid));
        assert_eq!(l.outstanding(), 1);
        // Self persist alone: no commit (1 of 3).
        let a2 = complete_persists(&mut l, &a);
        assert!(!a2.iter().any(|x| matches!(x, Action::Committed { .. })));
        // One follower ack → quorum → commit + deliver + COMMIT broadcast.
        let a3 = l.handle(msg(F2, Message::Ack { zxid }));
        assert!(a3.iter().any(|x| matches!(x, Action::Committed { zxid: z } if *z == zxid)));
        assert!(a3.iter().any(|x| matches!(x, Action::Deliver { txn } if txn.zxid == zxid)));
        assert!(matches!(sends_to(&a3, F2)[0], Message::Commit { zxid: z } if *z == zxid));
        assert_eq!(l.outstanding(), 0);
        assert_eq!(l.last_committed(), zxid);
    }

    #[test]
    fn follower_lags_track_acked_vs_committed() {
        let mut l = established_leader();
        // Freshly established: both followers active at zero lag.
        let lags = l.follower_lags();
        assert_eq!(lags.len(), 2);
        assert!(lags.iter().all(|f| f.lag_txns == Some(0) && !f.syncing));

        // Three proposals; f2 acks all three, f3 only the first.
        let mut persists = Vec::new();
        for _ in 0..3 {
            persists.extend(l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") }));
        }
        let _ = complete_persists(&mut l, &persists);
        for c in 1..=3u32 {
            let _ = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), c) }));
        }
        let _ = l.handle(msg(F3, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        assert_eq!(l.last_committed(), Zxid::new(Epoch(1), 3));

        let lags = l.follower_lags();
        let f2 = lags.iter().find(|f| f.peer == F2).unwrap();
        let f3 = lags.iter().find(|f| f.peer == F3).unwrap();
        assert_eq!(f2.acked, Some(Zxid::new(Epoch(1), 3)));
        assert_eq!(f2.lag_txns, Some(0));
        assert_eq!(f3.acked, Some(Zxid::new(Epoch(1), 1)));
        assert_eq!(f3.lag_txns, Some(2));

        // f3 catches up → lag drains to zero.
        for c in 2..=3u32 {
            let _ = l.handle(msg(F3, Message::Ack { zxid: Zxid::new(Epoch(1), c) }));
        }
        let f3 = l.follower_lags().into_iter().find(|f| f.peer == F3).unwrap();
        assert_eq!(f3.lag_txns, Some(0));
    }

    #[test]
    fn counter_gap_is_same_epoch_only() {
        assert_eq!(counter_gap(Zxid::new(Epoch(2), 5), Zxid::new(Epoch(2), 9)), Some(4));
        assert_eq!(counter_gap(Zxid::new(Epoch(2), 9), Zxid::new(Epoch(2), 5)), Some(0));
        assert_eq!(counter_gap(Zxid::new(Epoch(1), 5), Zxid::new(Epoch(2), 5)), None);
        assert_eq!(counter_gap(Zxid::ZERO, Zxid::ZERO), Some(0));
    }

    #[test]
    fn metrics_track_propose_ack_commit_cycle() {
        let reg = zab_metrics::Registry::new();
        let mut l = established_leader();
        l.set_metrics(CoreMetrics::registered(&reg));
        // Advance the driver clock, then propose; the quorum ack lands
        // 40ms later so the latency histogram must record exactly 40.
        let _ = l.handle(Input::Tick { now_ms: 100 });
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        let zxid = Zxid::new(Epoch(1), 1);
        assert_eq!(reg.snapshot().counter("core.proposals_proposed"), 1);
        assert_eq!(reg.snapshot().gauge("core.outstanding_depth"), 1);
        let _ = complete_persists(&mut l, &a);
        let _ = l.handle(Input::Tick { now_ms: 140 });
        let _ = l.handle(msg(F2, Message::Ack { zxid }));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("core.acks_received"), 1);
        assert_eq!(snap.counter("core.proposals_committed"), 1);
        assert_eq!(snap.gauge("core.outstanding_depth"), 0);
        let lat = snap.histogram("core.quorum_ack_latency_ms").cloned().unwrap_or_default();
        assert_eq!((lat.count, lat.sum, lat.max), (1, 40, 40));
    }

    #[test]
    fn follower_acks_without_leader_persist_do_not_commit() {
        // Commit needs a quorum that includes durable copies; with f2 and
        // f3 acked but the leader's own write still in flight, 2 of 3 have
        // it — that IS a quorum, so it commits. Verify the self-ack is not
        // required when followers alone form a quorum.
        let mut l = established_leader();
        let _a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        let zxid = Zxid::new(Epoch(1), 1);
        let a2 = l.handle(msg(F2, Message::Ack { zxid }));
        assert!(!a2.iter().any(|x| matches!(x, Action::Committed { .. })));
        let a3 = l.handle(msg(F3, Message::Ack { zxid }));
        assert!(a3.iter().any(|x| matches!(x, Action::Committed { .. })));
    }

    #[test]
    fn window_throttles_and_queue_drains_on_commit() {
        let mut config = cfg();
        config.max_outstanding = 1;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        // Bring up one follower for a quorum.
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        let a = complete_persists(&mut l, &a);
        let _ = a;
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());

        let a1 = l.handle(Input::ClientRequest { data: Bytes::from_static(b"1") });
        let _a2 = l.handle(Input::ClientRequest { data: Bytes::from_static(b"2") });
        assert_eq!(l.outstanding(), 1);
        assert_eq!(l.queued_requests(), 1);
        complete_persists(&mut l, &a1);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        // Commit of 1 pumps proposal 2.
        assert!(a.iter().any(|x| matches!(
            x,
            Action::Send { msg: Message::Propose { txn, .. }, .. } if txn.zxid == Zxid::new(Epoch(1), 2)
        )));
        assert_eq!(l.outstanding(), 1);
        assert_eq!(l.queued_requests(), 0);
    }

    #[test]
    fn pumped_proposal_suppresses_standalone_commit_frame() {
        let mut config = cfg();
        config.max_outstanding = 1;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());

        let a1 = l.handle(Input::ClientRequest { data: Bytes::from_static(b"1") });
        let _ = l.handle(Input::ClientRequest { data: Bytes::from_static(b"2") });
        complete_persists(&mut l, &a1);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        // The commit pumps proposal 2, which carries the watermark — so
        // no standalone COMMIT frame goes out in the same batch.
        let f2_msgs = sends_to(&a, F2);
        assert!(f2_msgs.iter().any(|m| matches!(
            m,
            Message::Propose { txn, commit_up_to }
                if txn.zxid == Zxid::new(Epoch(1), 2) && *commit_up_to == Zxid::new(Epoch(1), 1)
        )));
        assert!(!f2_msgs.iter().any(|m| matches!(m, Message::Commit { .. })));

        // With nothing queued, the next commit falls back to an explicit
        // COMMIT broadcast.
        complete_persists(&mut l, &a);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 2) }));
        assert!(sends_to(&a, F2)
            .iter()
            .any(|m| matches!(m, Message::Commit { zxid } if *zxid == Zxid::new(Epoch(1), 2))));
    }

    #[test]
    fn request_rejected_before_establishment() {
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        assert!(matches!(
            a[0],
            Action::ClientRequestRejected { reason: RejectReason::NotPrimary, .. }
        ));
    }

    #[test]
    fn request_queue_limit_rejects_overload() {
        let mut config = cfg();
        config.max_outstanding = 1;
        config.request_queue_limit = 2;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        for _ in 0..3 {
            l.handle(Input::ClientRequest { data: Bytes::from_static(b"y") });
        }
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"z") });
        assert!(a.iter().any(|x| matches!(
            x,
            Action::ClientRequestRejected { reason: RejectReason::Overloaded, .. }
        )));
    }

    #[test]
    fn fresher_follower_in_discovery_forces_abdication() {
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo {
                accepted_epoch: Epoch::ZERO,
                last_zxid: Zxid::new(Epoch(1), 5),
            },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch(1), last_zxid: Zxid::new(Epoch(1), 5) },
        ));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        assert_eq!(l.status(), LeaderStatus::Defunct);
    }

    #[test]
    fn higher_accepted_epoch_in_info_forces_abdication() {
        let mut l = established_leader();
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch(9), last_zxid: Zxid::ZERO },
        ));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn late_joiner_during_broadcast_gets_queued_traffic_after_sync() {
        // Build a 3-ensemble established with only f2; then f3 joins while
        // a proposal is being made mid-sync.
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());
        // Commit one txn.
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"pre") });
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        // f3 joins (fresh): fast path is not taken (accepted 0 < epoch 1).
        let a = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a, F3)[0], Message::NewEpoch { .. }));
        let a = l.handle(msg(
            F3,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        // Sync carries the committed txn.
        match sends_to(&a, F3)[0] {
            Message::SyncDiff { txns } => assert_eq!(txns.len(), 1),
            m => panic!("expected DIFF, got {}", m.kind()),
        }
        // While f3 syncs, another proposal happens: f3 must NOT see it yet.
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"mid") });
        assert!(sends_to(&a, F3).is_empty(), "proposal leaked to syncing peer");
        assert_eq!(sends_to(&a, F2).len(), 1);
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 2) }));
        // f3 finishes sync: UPTODATE, then the queued PROPOSE and COMMIT.
        let a = l.handle(msg(
            F3,
            Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::new(Epoch(1), 1) },
        ));
        let f3_msgs = sends_to(&a, F3);
        assert!(matches!(f3_msgs[0], Message::UpToDate { .. }));
        assert!(f3_msgs.iter().any(|m| matches!(
            m,
            Message::Propose { txn, .. } if txn.zxid == Zxid::new(Epoch(1), 2)
        )));
        assert!(f3_msgs.iter().any(|m| matches!(
            m,
            Message::Commit { zxid } if *zxid == Zxid::new(Epoch(1), 2)
        )));
    }

    #[test]
    fn peer_disconnect_removes_it_from_commit_accounting() {
        let mut l = established_leader();
        l.handle(Input::PeerDisconnected { peer: F2 });
        assert_eq!(l.active_followers().count(), 1);
        // Proposals still commit via self + f3.
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        complete_persists(&mut l, &a);
        let a = l.handle(msg(F3, Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        assert!(a.iter().any(|x| matches!(x, Action::Committed { .. })));
    }

    #[test]
    fn losing_quorum_contact_abdicates_on_tick() {
        let mut l = established_leader();
        l.handle(Input::PeerDisconnected { peer: F2 });
        l.handle(Input::PeerDisconnected { peer: F3 });
        let a = l.handle(Input::Tick { now_ms: 10_000 });
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::GoToElection { reason: "lost contact with a quorum" })));
    }

    #[test]
    fn pings_flow_to_peers_on_interval() {
        let mut l = established_leader();
        let a = l.handle(Input::Tick { now_ms: 60 });
        let pings = a
            .iter()
            .filter(|x| matches!(x, Action::Send { msg: Message::Ping { .. }, .. }))
            .count();
        assert_eq!(pings, 2);
    }

    #[test]
    fn establish_timeout_abandons_stuck_establishment() {
        let (mut l, _) = Leader::new(ME, cfg(), PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(Input::Tick { now_ms: 5_000 });
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::GoToElection { reason: "failed to establish in time" })));
    }

    #[test]
    fn ack_beyond_history_is_fatal() {
        let mut l = established_leader();
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 99) }));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn snap_sync_requested_for_deep_lag() {
        let mut config = cfg();
        config.snap_threshold = 1;
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        // Commit two txns so the gap to a fresh joiner exceeds threshold 1.
        for _ in 0..2 {
            let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
            complete_persists(&mut l, &a);
        }
        l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 2) }));
        // Fresh f3 joins: plan must be SNAP → TakeSnapshot requested.
        let _ = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        let a = l.handle(msg(
            F3,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(a.iter().any(|x| matches!(x, Action::TakeSnapshot)));
        // Snapshot arrives: SNAP + NEWLEADER go out.
        let a = l.handle(Input::SnapshotReady {
            snapshot: Bytes::from_static(b"state"),
            zxid: Zxid::new(Epoch(1), 2),
        });
        let f3_msgs = sends_to(&a, F3);
        assert!(matches!(f3_msgs[0], Message::SyncSnap { .. }));
        assert!(matches!(f3_msgs[1], Message::NewLeader { .. }));
    }

    #[test]
    fn messages_from_non_members_are_ignored() {
        let mut l = established_leader();
        let a = l.handle(msg(ServerId(99), Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        assert!(a.is_empty());
    }

    #[test]
    fn commit_watermark_skips_to_highest_quorum_acked() {
        // Pipelined proposals acked cumulatively: a single Ack(3) commits
        // 1..3 at once.
        let mut l = established_leader();
        let mut persists = Vec::new();
        for _ in 0..3 {
            persists.extend(l.handle(Input::ClientRequest { data: Bytes::from_static(b"p") }));
        }
        complete_persists(&mut l, &persists);
        let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), 3) }));
        let committed: Vec<Zxid> = a
            .iter()
            .filter_map(|x| match x {
                Action::Committed { zxid } => Some(*zxid),
                _ => None,
            })
            .collect();
        assert_eq!(committed, (1..=3).map(|c| Zxid::new(Epoch(1), c)).collect::<Vec<_>>());
        // One cumulative COMMIT message.
        let commits =
            sends_to(&a, F3).iter().filter(|m| matches!(m, Message::Commit { .. })).count();
        assert_eq!(commits, 1);
    }

    #[test]
    fn sync_chunks_bounds_each_chunk_and_preserves_order() {
        let big = SYNC_CHUNK_BYTES / 2;
        let txns: Vec<Txn> = (1..=5)
            .map(|i| Txn::new(Zxid::new(Epoch(1), i), Bytes::from(vec![i as u8; big])))
            .collect();
        let chunks = sync_chunks(txns.clone());
        assert!(chunks.len() > 1, "1.25 MiB of payload must split");
        for chunk in &chunks {
            let bytes: usize = chunk.iter().map(|t| t.data.len() + SYNC_TXN_OVERHEAD).sum();
            assert!(chunk.len() == 1 || bytes <= SYNC_CHUNK_BYTES);
        }
        let flat: Vec<Txn> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, txns);

        // Empty input still yields the mandatory leading (empty) chunk.
        assert_eq!(sync_chunks(Vec::new()), vec![Vec::new()]);

        // A single oversized txn travels alone rather than being dropped.
        let giant =
            vec![Txn::new(Zxid::new(Epoch(1), 9), Bytes::from(vec![0u8; SYNC_CHUNK_BYTES * 2]))];
        let chunks = sync_chunks(giant.clone());
        assert_eq!(chunks.into_iter().flatten().collect::<Vec<_>>(), giant);
    }

    /// Establishes a leader under `config` with only F2 attached, then
    /// commits `n` txns of `payload_bytes` each (F2 acks everything).
    fn leader_with_history(config: ClusterConfig, n: u32, payload_bytes: usize) -> Leader {
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        let a = l.handle(msg(
            F2,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        let a = l.handle(msg(
            F2,
            Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        complete_persists(&mut l, &a);
        l.handle(msg(F2, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        assert!(l.is_established());
        let payload = vec![0u8; payload_bytes];
        for i in 1..=n {
            let a = l.handle(Input::ClientRequest { data: Bytes::from(payload.clone()) });
            complete_persists(&mut l, &a);
            l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), i) }));
        }
        l
    }

    /// Feeds F3's FOLLOWERINFO + ACKEPOCH and returns the actions of the
    /// ACKEPOCH step (where the sync stream opens).
    fn join_f3(l: &mut Leader) -> Vec<Action> {
        let a = l.handle(msg(
            F3,
            Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
        ));
        assert!(matches!(sends_to(&a, F3)[0], Message::NewEpoch { .. }));
        l.handle(msg(F3, Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO }))
    }

    #[test]
    fn large_diff_sync_streams_as_acked_bounded_chunks() {
        // Establish with f2 only, grow a history too large for one sync
        // message, then let f3 join fresh: its DIFF opens with the first
        // bounded chunk, and each further chunk is released only after
        // the previous one is SYNCACKed, with NEWLEADER riding on the
        // final chunk — the whole tail covered in order.
        let mut l = leader_with_history(cfg(), 6, SYNC_CHUNK_BYTES / 4);
        let a = join_f3(&mut l);
        let f3_msgs = sends_to(&a, F3);
        assert_eq!(f3_msgs.len(), 1, "paced stream opens with exactly one chunk");
        let mut streamed: Vec<Txn> = Vec::new();
        let mut diffs = 0usize;
        match f3_msgs[0] {
            Message::SyncDiff { txns } => {
                streamed.extend(txns.iter().cloned());
                diffs += 1;
            }
            m => panic!("expected SyncDiff, got {}", m.kind()),
        }
        // Ack each chunk; the leader releases the next until NEWLEADER.
        let mut done = false;
        while !done {
            assert!(diffs < 16, "sync stream failed to terminate");
            let last = streamed.last().map(|t| t.zxid).unwrap_or(Zxid::ZERO);
            let a = l.handle(msg(F3, Message::SyncAck { last_zxid: last }));
            for m in sends_to(&a, F3) {
                match m {
                    Message::SyncDiff { txns } => {
                        let bytes: usize =
                            txns.iter().map(|t| t.data.len() + SYNC_TXN_OVERHEAD).sum();
                        assert!(txns.len() == 1 || bytes <= SYNC_CHUNK_BYTES);
                        streamed.extend(txns.iter().cloned());
                        diffs += 1;
                    }
                    Message::NewLeader { .. } => done = true,
                    m => panic!("unexpected message in sync stream: {}", m.kind()),
                }
            }
        }
        assert!(diffs > 1, "6 × 256 KiB must not fit one sync message");
        assert_eq!(streamed.len(), 6);
        assert!(streamed.windows(2).all(|w| w[0].zxid < w[1].zxid));
        // The stream is fully shipped: progress reports zero remaining.
        let progress = l.syncing_peers();
        assert_eq!(progress.len(), 1);
        assert_eq!((progress[0].peer, progress[0].chunks_remaining), (F3, 0));
        // Activation completes as usual.
        let a =
            l.handle(msg(F3, Message::AckNewLeader { epoch: Epoch(1), last_zxid: l.last_zxid() }));
        assert!(matches!(sends_to(&a, F3)[0], Message::UpToDate { .. }));
        assert!(l.syncing_peers().is_empty());
    }

    #[test]
    fn pacing_disabled_streams_whole_diff_in_one_burst() {
        // sync_rate_bytes_per_sec = 0 restores the legacy behavior: every
        // chunk plus NEWLEADER in a single batch, no acks required.
        let mut config = cfg();
        config.sync_rate_bytes_per_sec = 0;
        let mut l = leader_with_history(config, 6, SYNC_CHUNK_BYTES / 4);
        let a = join_f3(&mut l);
        let f3_msgs = sends_to(&a, F3);
        let diffs = f3_msgs.iter().filter(|m| matches!(m, Message::SyncDiff { .. })).count();
        assert!(diffs > 1, "unpaced multi-chunk stream ships at once");
        assert!(matches!(f3_msgs.last().expect("stream not empty"), Message::NewLeader { .. }));
        let total: usize = f3_msgs
            .iter()
            .filter_map(|m| match m {
                Message::SyncDiff { txns } => Some(txns.len()),
                _ => None,
            })
            .sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn paced_sync_throttles_until_tick_refills_budget() {
        // With a 1 MiB/s budget the burst floor (2 maximal chunks) covers
        // the opening chunk and one release; the third chunk must wait for
        // tick-driven refills.
        let mut config = cfg();
        config.sync_rate_bytes_per_sec = 1 << 20;
        let mut l = leader_with_history(config, 12, SYNC_CHUNK_BYTES / 4);
        let a = join_f3(&mut l);
        assert_eq!(sends_to(&a, F3).len(), 1, "opening chunk only");
        // Ack 1 → chunk 2 released from the remaining burst budget.
        let a = l.handle(msg(F3, Message::SyncAck { last_zxid: Zxid::new(Epoch(1), 3) }));
        assert!(matches!(sends_to(&a, F3)[0], Message::SyncDiff { .. }));
        // Ack 2 → bucket is dry: chunk 3 is deferred, not sent.
        let a = l.handle(msg(F3, Message::SyncAck { last_zxid: Zxid::new(Epoch(1), 6) }));
        assert!(sends_to(&a, F3).is_empty(), "throttled: no chunk until refill");
        let progress = l.syncing_peers();
        assert_eq!(progress.len(), 1);
        assert_eq!(progress[0].chunks_remaining, 2);
        assert!(progress[0].bytes_remaining > 0);
        // 100 ms refills ~105 KiB — still short of a ~768 KiB chunk.
        let a = l.handle(Input::Tick { now_ms: 100 });
        assert!(
            !sends_to(&a, F3).iter().any(|m| matches!(m, Message::SyncDiff { .. })),
            "insufficient refill must not release the chunk"
        );
        // Keep peers fresh while virtual time advances, then refill enough.
        let mut released_at = None;
        for t in (200..=1200).step_by(100) {
            l.handle(msg(F2, Message::Pong { last_zxid: l.last_zxid() }));
            l.handle(msg(F3, Message::Pong { last_zxid: Zxid::new(Epoch(1), 6) }));
            let a = l.handle(Input::Tick { now_ms: t });
            if sends_to(&a, F3).iter().any(|m| matches!(m, Message::SyncDiff { .. })) {
                released_at = Some(t);
                break;
            }
        }
        let released_at = released_at.expect("refill must eventually release the chunk");
        assert!(released_at >= 300, "a ~768 KiB chunk needs ≥ ~700 ms at 1 MiB/s minus leftovers");
        assert_eq!(l.syncing_peers()[0].chunks_remaining, 1);
    }

    #[test]
    fn paced_sync_extends_plan_over_live_traffic_and_bounds_activation_flush() {
        // A follower that rejoins under live load must not have every
        // concurrent proposal queued behind its sync for one giant
        // activation burst (a burst that can stall the leader past the
        // follower timeout and wedge the cluster in re-elections).
        // Instead the paced stream chases the commit frontier by
        // extending itself from history, ack-gated, and only traffic
        // broadcast after NEWLEADER ships waits for the flush.
        fn record(actions: &[Action], streamed: &mut Vec<Txn>, seen_newleader: &mut bool) {
            for m in sends_to(actions, F3) {
                match m {
                    Message::SyncDiff { txns } => streamed.extend(txns.iter().cloned()),
                    Message::NewLeader { .. } => *seen_newleader = true,
                    Message::Propose { .. } => panic!("proposal sent to a peer mid-sync"),
                    _ => {}
                }
            }
        }
        let mut config = cfg();
        // The whole 7 MiB stream fits the initial 8 MiB bucket, so this
        // test isolates plan extension from throttling.
        config.sync_rate_bytes_per_sec = 8 << 20;
        let quarter = SYNC_CHUNK_BYTES / 4;
        let mut l = leader_with_history(config, 8, quarter);
        let mut streamed: Vec<Txn> = Vec::new();
        let mut seen_newleader = false;
        let a = join_f3(&mut l);
        record(&a, &mut streamed, &mut seen_newleader);
        // While the sync is in flight, live load commits another five
        // MiB — well past the cutover threshold of the original plan.
        let payload = vec![0u8; quarter];
        for i in 9..=28u32 {
            let a = l.handle(Input::ClientRequest { data: Bytes::from(payload.clone()) });
            let b = complete_persists(&mut l, &a);
            record(&a, &mut streamed, &mut seen_newleader);
            record(&b, &mut streamed, &mut seen_newleader);
            let a = l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), i) }));
            record(&a, &mut streamed, &mut seen_newleader);
        }
        // Ack chunk by chunk: the stream must outgrow its plan and still
        // terminate with NEWLEADER at the frontier.
        let mut rounds = 0usize;
        while !seen_newleader {
            rounds += 1;
            assert!(rounds < 64, "extended sync stream failed to terminate");
            let last = streamed.last().map(|t| t.zxid).unwrap_or(Zxid::ZERO);
            let a = l.handle(msg(F3, Message::SyncAck { last_zxid: last }));
            record(&a, &mut streamed, &mut seen_newleader);
        }
        assert_eq!(streamed.len(), 28, "extension must cover the live-load txns");
        assert!(streamed.windows(2).all(|w| w[0].zxid < w[1].zxid));
        // One proposal lands in the post-NEWLEADER round-trip window:
        // that (and only that) is activation-flush traffic.
        let a = l.handle(Input::ClientRequest { data: Bytes::from(vec![7u8; 8]) });
        complete_persists(&mut l, &a);
        assert!(sends_to(&a, F3).is_empty(), "post-NEWLEADER traffic queues for the flush");
        let a = l.handle(msg(
            F3,
            Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::new(Epoch(1), 28) },
        ));
        let to_f3 = sends_to(&a, F3);
        assert!(matches!(to_f3[0], Message::UpToDate { .. }));
        assert!(
            to_f3.iter().any(|m| matches!(
                m,
                Message::Propose { txn, .. } if txn.zxid == Zxid::new(Epoch(1), 29)
            )),
            "the round-trip-window proposal flushes at activation"
        );
        assert_eq!(to_f3.len(), 2, "the flush covers only the round-trip window");
        assert!(l.syncing_peers().is_empty());
    }

    #[test]
    fn underprovisioned_sync_rate_goes_express_instead_of_livelocking() {
        // Live load appending faster than `sync_rate_bytes_per_sec` can
        // ship means a strictly throttled stream never closes the gap:
        // the follower would sync forever (and its unsent backlog grow
        // without bound). The session must notice the growing gap and go
        // express — ack-gated, burst-bounded transmissions exempt from
        // the bucket — so the catch-up still terminates.
        let mut config = cfg();
        config.sync_rate_bytes_per_sec = 2 << 20;
        let quarter = SYNC_CHUNK_BYTES / 4;
        let mut l = leader_with_history(config.clone(), 6, quarter);
        let mut streamed: Vec<Txn> = Vec::new();
        let mut seen_newleader = false;
        let mut saw_multi_diff = false;
        let record = |actions: &[Action],
                      streamed: &mut Vec<Txn>,
                      seen_newleader: &mut bool,
                      saw_multi_diff: &mut bool| {
            let mut diffs_in_turn = 0usize;
            for m in sends_to(actions, F3) {
                match m {
                    Message::SyncDiff { txns } => {
                        diffs_in_turn += 1;
                        // Stall retransmits duplicate; keep novel txns only.
                        let last = streamed.last().map(|t| t.zxid).unwrap_or(Zxid::ZERO);
                        streamed.extend(txns.iter().filter(|t| t.zxid > last).cloned());
                    }
                    Message::NewLeader { .. } => *seen_newleader = true,
                    _ => {}
                }
            }
            if diffs_in_turn >= 2 {
                *saw_multi_diff = true;
            }
        };
        let a = join_f3(&mut l);
        record(&a, &mut streamed, &mut seen_newleader, &mut saw_multi_diff);
        let payload = vec![0u8; quarter];
        let mut appended = 6u32;
        let mut t = 0u64;
        let mut iters = 0usize;
        while !seen_newleader {
            iters += 1;
            assert!(iters < 100, "express chase failed to terminate the stream");
            // ~6.5 MiB/s of live appends against a 2 MiB/s sync rate that
            // also still owes the whole backlog: the gap widens every
            // extension until the guard trips. Express showing up
            // (multi-chunk transmissions) is the cue to ease the load —
            // a closed loop would have slowed long before this too.
            if !saw_multi_diff {
                for _ in 0..5 {
                    appended += 1;
                    let a = l.handle(Input::ClientRequest { data: Bytes::from(payload.clone()) });
                    complete_persists(&mut l, &a);
                    l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), appended) }));
                }
            }
            // Steps stay under the 400 ms contact timeout (pongs stamp at
            // the pre-tick clock).
            t += 200;
            l.handle(msg(F2, Message::Pong { last_zxid: l.last_zxid() }));
            l.handle(msg(F3, Message::Pong { last_zxid: Zxid::ZERO }));
            let a = l.handle(Input::Tick { now_ms: t });
            record(&a, &mut streamed, &mut seen_newleader, &mut saw_multi_diff);
            let last = streamed.last().map(|t| t.zxid).unwrap_or(Zxid::ZERO);
            let a = l.handle(msg(F3, Message::SyncAck { last_zxid: last }));
            record(&a, &mut streamed, &mut seen_newleader, &mut saw_multi_diff);
        }
        assert!(saw_multi_diff, "the convergence guard must engage express mode");
        assert_eq!(streamed.len(), appended as usize, "the stream covers every append");
        assert!(streamed.windows(2).all(|w| w[0].zxid < w[1].zxid));
        let a = l.handle(msg(
            F3,
            Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::new(Epoch(1), appended) },
        ));
        assert!(matches!(sends_to(&a, F3)[0], Message::UpToDate { .. }));
        assert!(l.syncing_peers().is_empty());
    }

    #[test]
    fn concurrent_syncs_share_the_token_budget() {
        // Two followers rejoining at once draw from one bucket: after both
        // opening chunks the budget admits only one release per refill, so
        // the second release (id order) waits for more tokens.
        let mut config = ClusterConfig::majority([
            ServerId(1),
            ServerId(2),
            ServerId(3),
            ServerId(4),
            ServerId(5),
        ]);
        config.sync_rate_bytes_per_sec = 1 << 20;
        let f4 = ServerId(4);
        let f5 = ServerId(5);
        let (mut l, _) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        for f in [F2, f5] {
            let a = l.handle(msg(
                f,
                Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
            ));
            complete_persists(&mut l, &a);
        }
        for f in [F2, f5] {
            let a = l.handle(msg(
                f,
                Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
            ));
            complete_persists(&mut l, &a);
        }
        for f in [F2, f5] {
            l.handle(msg(f, Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO }));
        }
        assert!(l.is_established());
        let payload = vec![0u8; SYNC_CHUNK_BYTES / 4];
        for i in 1..=12u32 {
            let a = l.handle(Input::ClientRequest { data: Bytes::from(payload.clone()) });
            complete_persists(&mut l, &a);
            l.handle(msg(F2, Message::Ack { zxid: Zxid::new(Epoch(1), i) }));
            l.handle(msg(f5, Message::Ack { zxid: Zxid::new(Epoch(1), i) }));
        }
        // F3 and F4 join together; each gets its opening chunk.
        for f in [F3, f4] {
            let _ = l.handle(msg(
                f,
                Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
            ));
            let a = l.handle(msg(
                f,
                Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
            ));
            assert!(matches!(sends_to(&a, f)[0], Message::SyncDiff { .. }));
        }
        // Both ack: the shared bucket (2 MiB burst − 2 openings) has no
        // room left, so both sessions throttle.
        for f in [F3, f4] {
            let a = l.handle(msg(f, Message::SyncAck { last_zxid: Zxid::new(Epoch(1), 3) }));
            assert!(sends_to(&a, f).is_empty(), "bucket drained by the two openings");
        }
        assert_eq!(l.syncing_peers().len(), 2);
        // One refill window admits one chunk at a time, so the two
        // sessions serialize instead of bursting together (lower id first).
        let mut f3_at = None;
        let mut f4_at = None;
        for t in (400..=2400).step_by(400) {
            for f in [F2, F3, f4, f5] {
                l.handle(msg(f, Message::Pong { last_zxid: l.last_zxid() }));
            }
            let a = l.handle(Input::Tick { now_ms: t });
            if f3_at.is_none()
                && sends_to(&a, F3).iter().any(|m| matches!(m, Message::SyncDiff { .. }))
            {
                f3_at = Some(t);
            }
            if f4_at.is_none()
                && sends_to(&a, f4).iter().any(|m| matches!(m, Message::SyncDiff { .. }))
            {
                f4_at = Some(t);
            }
        }
        let f3_at = f3_at.expect("f3's next chunk must release");
        let f4_at = f4_at.expect("f4's next chunk must release");
        assert!(f3_at < f4_at, "a shared bucket serializes concurrent sync releases");
    }

    #[test]
    fn retained_compaction_snapshot_serves_snap_without_app_round_trip() {
        // After Compact hands the leader a snapshot, a follower lagging
        // behind the compaction horizon is served SNAP directly from it —
        // no TakeSnapshot round trip — stitched to the retained log tail.
        let mut config = cfg();
        config.snap_threshold = 1;
        let mut l = leader_with_history(config, 3, 8);
        assert_eq!(l.last_committed(), Zxid::new(Epoch(1), 3));
        let a = l.handle(Input::Compact {
            through: Zxid::new(Epoch(1), 2),
            snapshot: Some(Bytes::from_static(b"compacted-state")),
        });
        assert!(a.is_empty());
        let a = join_f3(&mut l);
        assert!(
            !a.iter().any(|x| matches!(x, Action::TakeSnapshot)),
            "retained snapshot must be served without an app round trip"
        );
        let f3_msgs = sends_to(&a, F3);
        match f3_msgs[0] {
            Message::SyncSnap { snapshot, snapshot_zxid, txns } => {
                assert_eq!(snapshot.as_ref(), b"compacted-state");
                assert_eq!(*snapshot_zxid, Zxid::new(Epoch(1), 2));
                // The tail past the horizon rides along.
                assert_eq!(txns.len(), 1);
                assert_eq!(txns[0].zxid, Zxid::new(Epoch(1), 3));
            }
            m => panic!("expected SyncSnap, got {}", m.kind()),
        }
        assert!(matches!(f3_msgs[1], Message::NewLeader { .. }));
        assert_eq!(l.metrics.snap_syncs.get(), 1);
        assert_eq!(l.metrics.sync_bytes_sent.get() as usize, b"compacted-state".len() + 8 + 64);
    }

    #[test]
    fn sync_chunks_split_exactly_at_budget_boundary() {
        // Four txns whose budgeted costs sum to exactly the chunk budget
        // stay together; one extra byte forces a split after three.
        let unit = SYNC_CHUNK_BYTES / 4 - SYNC_TXN_OVERHEAD;
        let txns: Vec<Txn> = (1..=4)
            .map(|i| Txn::new(Zxid::new(Epoch(1), i), Bytes::from(vec![0u8; unit])))
            .collect();
        assert_eq!(sync_chunks(txns.clone()).len(), 1, "exact fit must not split");
        let mut over = txns;
        over[3] = Txn::new(Zxid::new(Epoch(1), 4), Bytes::from(vec![0u8; unit + 1]));
        let chunks = sync_chunks(over);
        assert_eq!(chunks.len(), 2, "one byte over the budget splits");
        assert_eq!((chunks[0].len(), chunks[1].len()), (3, 1));
    }

    // ---- relay-tree dissemination ------------------------------------

    /// Drives a fresh n-ensemble leader (ids 1..=n, self = 1) all the way
    /// to Broadcasting with every follower active, under `topology`.
    fn leader_with_followers(n: u64, topology: Topology) -> Leader {
        let mut config = ClusterConfig::majority((1..=n).map(ServerId));
        config.topology = topology;
        let (mut l, init) = Leader::new(ME, config, PersistentState::default(), Zxid::ZERO, 0);
        assert!(init.is_empty());
        let mut acc: Vec<Action> = Vec::new();
        for f in 2..=n {
            acc.extend(l.handle(msg(
                ServerId(f),
                Message::FollowerInfo { accepted_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
            )));
        }
        complete_persists(&mut l, &acc.clone());
        let mut acc: Vec<Action> = Vec::new();
        for f in 2..=n {
            acc.extend(l.handle(msg(
                ServerId(f),
                Message::AckEpoch { current_epoch: Epoch::ZERO, last_zxid: Zxid::ZERO },
            )));
        }
        complete_persists(&mut l, &acc.clone());
        for f in 2..=n {
            let _ = l.handle(msg(
                ServerId(f),
                Message::AckNewLeader { epoch: Epoch(1), last_zxid: Zxid::ZERO },
            ));
        }
        assert!(l.is_established());
        assert_eq!(l.active_followers().count(), (n - 1) as usize);
        l
    }

    /// One committed transaction with every follower acking it — after
    /// this, every follower is relay-ready and the plan (if any) is live.
    fn propose_and_ack_all(l: &mut Leader, n: u64, counter: u32) -> Vec<Action> {
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        complete_persists(l, &a);
        let zxid = Zxid::new(Epoch(1), counter);
        let mut acc = Vec::new();
        for f in 2..=n {
            acc.extend(l.handle(msg(ServerId(f), Message::Ack { zxid })));
        }
        assert_eq!(l.last_committed(), zxid);
        acc
    }

    fn groups_of(l: &Leader) -> BTreeMap<ServerId, Vec<ServerId>> {
        l.relay_topology().into_iter().collect()
    }

    #[test]
    fn relay_plan_forms_sqrt_groups_once_followers_ack() {
        let mut l = leader_with_followers(9, Topology::Relay);
        assert!(l.relay_topology().is_empty(), "no follower is relay-ready yet");
        let a = propose_and_ack_all(&mut l, 9, 1);
        // m = 8 ready followers, group size ⌈√8⌉ = 3, first of each
        // chunk relays: [2,3,4] [5,6,7] [8,9].
        let groups = groups_of(&l);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&ServerId(2)], vec![ServerId(3), ServerId(4)]);
        assert_eq!(groups[&ServerId(5)], vec![ServerId(6), ServerId(7)]);
        assert_eq!(groups[&ServerId(8)], vec![ServerId(9)]);
        // The final assignments went out to the relays.
        assert!(sends_to(&a, ServerId(8)).iter().any(
            |m| matches!(m, Message::RelayAssign { members } if members == &vec![ServerId(9)])
        ));
    }

    #[test]
    fn relay_broadcast_writes_once_per_relay_and_skips_members() {
        let mut l = leader_with_followers(9, Topology::Relay);
        propose_and_ack_all(&mut l, 9, 1);
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"y") });
        let zxid = Zxid::new(Epoch(1), 2);
        // Exactly one outbound frame: a FORWARD broadcast to the relays.
        let broadcasts: Vec<_> = a
            .iter()
            .filter_map(|x| match x {
                Action::Broadcast { to, msg } => Some((to, msg)),
                Action::Send { .. } => panic!("no direct sends expected under a full plan"),
                _ => None,
            })
            .collect();
        assert_eq!(broadcasts.len(), 1);
        assert_eq!(broadcasts[0].0, &vec![ServerId(2), ServerId(5), ServerId(8)]);
        let Message::Forward { inner } = broadcasts[0].1 else {
            panic!("relays must receive FORWARD, got {}", broadcasts[0].1.kind())
        };
        // The wrapped bytes decode to the origin PROPOSE, verbatim.
        match Message::decode_bytes(inner.clone()).unwrap() {
            Message::Propose { txn, .. } => assert_eq!(txn.zxid, zxid),
            m => panic!("expected wrapped PROPOSE, got {}", m.kind()),
        }
    }

    #[test]
    fn star_topology_never_forms_a_plan() {
        let mut l = leader_with_followers(9, Topology::Star);
        propose_and_ack_all(&mut l, 9, 1);
        assert!(l.relay_topology().is_empty());
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"y") });
        // Plain PROPOSE to all eight followers.
        let targets: Vec<ServerId> = (2..=9).map(ServerId).collect();
        assert!(a.iter().any(|x| matches!(
            x,
            Action::Broadcast { to, msg: Message::Propose { .. } } if to == &targets
        )));
    }

    #[test]
    fn small_ensembles_stay_star_under_relay_topology() {
        let mut l = leader_with_followers(4, Topology::Relay);
        propose_and_ack_all(&mut l, 4, 1);
        // 3 ready followers < MIN_RELAY_FANOUT: a tree would only add a
        // hop.
        assert!(l.relay_topology().is_empty());
    }

    #[test]
    fn relay_crash_reparents_members_with_replay_on_the_new_path() {
        let reg = zab_metrics::Registry::new();
        let mut l = leader_with_followers(9, Topology::Relay);
        l.set_metrics(CoreMetrics::registered(&reg));
        propose_and_ack_all(&mut l, 9, 1);
        // A second proposal is in flight (acked by nobody) when relay 2
        // crashes: the replay must carry it on each member's new path.
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"y") });
        complete_persists(&mut l, &a);
        let inflight = Zxid::new(Epoch(1), 2);
        let before = reg.snapshot().counter("core.relay_reassignments");
        let a = l.handle(Input::PeerDisconnected { peer: ServerId(2) });
        // 7 ready followers → ⌈√7⌉ = 3 → [3,4,5] [6,7,8] [9]: relays 3
        // and 6, follower 9 back to direct.
        let groups = groups_of(&l);
        assert_eq!(groups[&ServerId(3)], vec![ServerId(4), ServerId(5)]);
        assert_eq!(groups[&ServerId(6)], vec![ServerId(7), ServerId(8)]);
        assert_eq!(groups.len(), 2);
        assert!(reg.snapshot().counter("core.relay_reassignments") > before);
        // Assignments precede the replays they govern.
        let to3 = sends_to(&a, ServerId(3));
        assert!(
            matches!(to3[0], Message::RelayAssign { members } if members == &vec![ServerId(4), ServerId(5)])
        );
        // The in-flight txn is replayed through the new relay...
        assert!(to3.iter().any(|m| matches!(m, Message::Forward { inner }
            if matches!(Message::decode_bytes(inner.clone()).unwrap(),
                Message::Propose { txn, .. } if txn.zxid == inflight))));
        // ...and straight to the follower that fell back to direct.
        assert!(sends_to(&a, ServerId(9))
            .iter()
            .any(|m| matches!(m, Message::Propose { txn, .. } if txn.zxid == inflight)));
        // Demoted relays are told to stop forwarding.
        assert!(sends_to(&a, ServerId(5))
            .iter()
            .any(|m| matches!(m, Message::RelayAssign { members } if members.is_empty())));
    }

    #[test]
    fn stalled_relayed_member_falls_back_to_direct() {
        let mut l = leader_with_followers(9, Topology::Relay);
        propose_and_ack_all(&mut l, 9, 1);
        // Follower 9 (relayed under 8) stops acking: its relay link is
        // cut, but it still reaches the leader (pongs keep flowing).
        let _ = l.handle(Input::Tick { now_ms: 200 });
        let a = l.handle(Input::ClientRequest { data: Bytes::from_static(b"y") });
        complete_persists(&mut l, &a);
        let inflight = Zxid::new(Epoch(1), 2);
        for f in 2..=8 {
            let _ = l.handle(msg(ServerId(f), Message::Ack { zxid: inflight }));
        }
        let _ = l.handle(msg(ServerId(9), Message::Pong { last_zxid: Zxid::new(Epoch(1), 1) }));
        assert_eq!(l.last_committed(), inflight);
        // One follower timeout later with no ack progress: the stall
        // detector demotes 9 and the rebuilt plan replays it directly.
        let a = l.handle(Input::Tick { now_ms: 600 });
        assert!(!a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        let parents: Vec<ServerId> = groups_of(&l).values().flatten().copied().collect();
        assert!(!parents.contains(&ServerId(9)), "9 must leave the tree");
        assert!(sends_to(&a, ServerId(9))
            .iter()
            .any(|m| matches!(m, Message::Propose { txn, .. } if txn.zxid == inflight)));
    }

    #[test]
    fn rejoining_member_is_purged_from_plan_before_resync() {
        let mut l = leader_with_followers(9, Topology::Relay);
        propose_and_ack_all(&mut l, 9, 1);
        // Member 3 reconnects from scratch (same epoch fast path): it
        // must leave the tree while it resyncs.
        let _ = l.handle(msg(
            ServerId(3),
            Message::FollowerInfo { accepted_epoch: Epoch(1), last_zxid: Zxid::ZERO },
        ));
        let members: Vec<ServerId> = groups_of(&l).values().flatten().copied().collect();
        assert!(!members.contains(&ServerId(3)));
        assert!(!groups_of(&l).contains_key(&ServerId(3)));
    }
}
