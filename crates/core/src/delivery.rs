//! Ordered delivery of committed transactions to the application.
//!
//! PO atomic broadcast delivers transactions in zxid order with no gaps.
//! Both automata funnel deliveries through [`deliver_committed`], which
//! walks the history from the per-incarnation delivery watermark up to the
//! committed watermark and emits one [`Action::Deliver`] per transaction.

use crate::events::Action;
use crate::history::History;
use crate::metrics::CoreMetrics;
use crate::types::Zxid;
use zab_trace::{Stage, Tracer};

/// Emits `Deliver` actions for every committed-but-undelivered transaction,
/// advancing `delivered_to`.
///
/// Delivery is exactly-once per automaton incarnation: the watermark only
/// moves forward, and a transaction is emitted only when the committed
/// watermark has reached it. Each delivery bumps
/// `metrics.proposals_committed`, the counter the e2e and chaos tests
/// compare across replicas, and records a [`Stage::Deliver`] flight-recorder
/// event — the terminal point of every zxid's causal timeline.
pub fn deliver_committed(
    history: &History,
    delivered_to: &mut Zxid,
    metrics: &CoreMetrics,
    tracer: &Tracer,
    out: &mut Vec<Action>,
) {
    let target = history.last_committed();
    if *delivered_to >= target {
        return;
    }
    for txn in history.txns_after(*delivered_to) {
        if txn.zxid > target {
            break;
        }
        debug_assert!(
            txn.zxid > *delivered_to,
            "delivery would regress: {} after {}",
            txn.zxid,
            delivered_to
        );
        tracer.instant(Stage::Deliver, txn.zxid.0, 0);
        out.push(Action::Deliver { txn: txn.clone() });
        metrics.proposals_committed.inc();
        *delivered_to = txn.zxid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Epoch, Txn};

    fn hist(n: u32) -> History {
        let mut h = History::new();
        for c in 1..=n {
            h.append(Txn::new(Zxid::new(Epoch(1), c), vec![c as u8]));
        }
        h
    }

    fn delivered(out: &[Action]) -> Vec<Zxid> {
        out.iter()
            .map(|a| match a {
                Action::Deliver { txn } => txn.zxid,
                other => panic!("unexpected action {other:?}"),
            })
            .collect()
    }

    #[test]
    fn delivers_up_to_committed_watermark_only() {
        let mut h = hist(5);
        h.mark_committed(Zxid::new(Epoch(1), 3));
        let mut watermark = Zxid::ZERO;
        let mut out = Vec::new();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        assert_eq!(delivered(&out), (1..=3).map(|c| Zxid::new(Epoch(1), c)).collect::<Vec<_>>());
        assert_eq!(watermark, Zxid::new(Epoch(1), 3));
    }

    #[test]
    fn idempotent_when_nothing_new() {
        let mut h = hist(2);
        h.mark_committed(Zxid::new(Epoch(1), 2));
        let mut watermark = Zxid::ZERO;
        let mut out = Vec::new();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        out.clear();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn resumes_from_watermark() {
        let mut h = hist(4);
        h.mark_committed(Zxid::new(Epoch(1), 2));
        let mut watermark = Zxid::ZERO;
        let mut out = Vec::new();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        h.mark_committed(Zxid::new(Epoch(1), 4));
        out.clear();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        assert_eq!(delivered(&out), vec![Zxid::new(Epoch(1), 3), Zxid::new(Epoch(1), 4)]);
    }
}
