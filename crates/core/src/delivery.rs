//! Ordered delivery of committed transactions to the application.
//!
//! PO atomic broadcast delivers transactions in zxid order with no gaps.
//! Both automata funnel deliveries through [`deliver_committed`], which
//! walks the history from the per-incarnation delivery watermark up to the
//! committed watermark and emits one [`Action::Deliver`] per transaction.

use crate::events::Action;
use crate::history::History;
use crate::metrics::CoreMetrics;
use crate::types::Zxid;
use std::collections::VecDeque;
use zab_trace::{Stage, Tracer};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Delivered-prefix checkpoints are taken every this many transactions
/// (whenever `zxid.counter() % CHECKPOINT_STRIDE == 0`). A fixed zxid
/// stride — rather than "every Nth local delivery" — means every replica
/// checkpoints at the *same* zxids, so an ensemble auditor can compare
/// hashes at common points even when replicas are scraped at different
/// moments of the commit stream.
pub const CHECKPOINT_STRIDE: u32 = 64;

/// Checkpoints retained (ring). At stride 64 this covers the last ~8k
/// delivered transactions, bounding both memory and `/health` size.
const CHECKPOINT_CAP: usize = 128;

/// One `(zxid, hash)` point of the rolling delivery hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashCheckpoint {
    /// The delivery watermark the hash covers (inclusive).
    pub zxid: Zxid,
    /// Chain hash over every delivery from the anchor through `zxid`.
    pub hash: u64,
}

/// Rolling hash over the delivered transaction stream — the
/// delivered-prefix-agreement witness the ensemble watchdog compares
/// across replicas.
///
/// Each delivery folds `(zxid, payload)` into an FNV-1a chain: O(payload)
/// per deliver, never O(history). Because replicas may boot (and install
/// snapshots) at different points, a chain hash from process start would
/// never agree across nodes; instead the chain **re-anchors at every epoch
/// boundary** (and at the first delivery after boot), and the anchor zxid
/// is part of the witness. Two replicas are comparable exactly when their
/// anchors match — true for every replica that lived through the same
/// establishment, which is the steady state the watchdog patrols. On
/// agreement: if both anchors and both watermarks match, PO says the
/// replicas delivered identical streams, so the hashes must match —
/// anything else is a real divergence (or a corrupted apply path).
#[derive(Debug, Clone)]
pub struct DeliveryHash {
    anchor: Zxid,
    last: Zxid,
    hash: u64,
    checkpoints: VecDeque<HashCheckpoint>,
    version: u64,
}

impl Default for DeliveryHash {
    fn default() -> DeliveryHash {
        DeliveryHash {
            anchor: Zxid::ZERO,
            last: Zxid::ZERO,
            hash: FNV_OFFSET,
            checkpoints: VecDeque::new(),
            version: 0,
        }
    }
}

impl DeliveryHash {
    /// Fresh tracker; the chain anchors on the first observed delivery.
    pub fn new() -> DeliveryHash {
        DeliveryHash::default()
    }

    /// Folds one delivered transaction into the chain. Call in the apply
    /// path, in delivery order.
    pub fn observe(&mut self, zxid: Zxid, data: &[u8]) {
        if self.last == Zxid::ZERO || zxid.epoch() != self.last.epoch() {
            // New chain: first delivery of this incarnation or of a new
            // epoch. Old-epoch checkpoints belong to the old anchor and
            // would never be compared again — drop them.
            self.hash = FNV_OFFSET;
            self.anchor = zxid;
            self.checkpoints.clear();
        }
        let mut h = self.hash;
        for b in zxid.0.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for b in (data.len() as u64).to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for &b in data {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
        self.last = zxid;
        self.version += 1;
        if zxid.counter().is_multiple_of(CHECKPOINT_STRIDE) {
            if self.checkpoints.len() == CHECKPOINT_CAP {
                self.checkpoints.pop_front();
            }
            self.checkpoints.push_back(HashCheckpoint { zxid, hash: h });
        }
    }

    /// First zxid of the current chain (`Zxid::ZERO` before any delivery).
    pub fn anchor(&self) -> Zxid {
        self.anchor
    }

    /// Last delivered zxid folded into the chain.
    pub fn last(&self) -> Zxid {
        self.last
    }

    /// Chain hash covering `anchor()..=last()`.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Retained stride checkpoints, oldest first.
    pub fn checkpoints(&self) -> impl Iterator<Item = HashCheckpoint> + '_ {
        self.checkpoints.iter().copied()
    }

    /// Monotone change counter — lets a publisher skip re-copying the
    /// checkpoint ring when nothing was delivered since the last look.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Emits `Deliver` actions for every committed-but-undelivered transaction,
/// advancing `delivered_to`.
///
/// Delivery is exactly-once per automaton incarnation: the watermark only
/// moves forward, and a transaction is emitted only when the committed
/// watermark has reached it. Each delivery bumps
/// `metrics.proposals_committed`, the counter the e2e and chaos tests
/// compare across replicas, and records a [`Stage::Deliver`] flight-recorder
/// event — the terminal point of every zxid's causal timeline.
pub fn deliver_committed(
    history: &History,
    delivered_to: &mut Zxid,
    metrics: &CoreMetrics,
    tracer: &Tracer,
    out: &mut Vec<Action>,
) {
    let target = history.last_committed();
    if *delivered_to >= target {
        return;
    }
    for txn in history.txns_after(*delivered_to) {
        if txn.zxid > target {
            break;
        }
        debug_assert!(
            txn.zxid > *delivered_to,
            "delivery would regress: {} after {}",
            txn.zxid,
            delivered_to
        );
        tracer.instant(Stage::Deliver, txn.zxid.0, 0);
        out.push(Action::Deliver { txn: txn.clone() });
        metrics.proposals_committed.inc();
        *delivered_to = txn.zxid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Epoch, Txn};

    fn hist(n: u32) -> History {
        let mut h = History::new();
        for c in 1..=n {
            h.append(Txn::new(Zxid::new(Epoch(1), c), vec![c as u8]));
        }
        h
    }

    fn delivered(out: &[Action]) -> Vec<Zxid> {
        out.iter()
            .map(|a| match a {
                Action::Deliver { txn } => txn.zxid,
                other => panic!("unexpected action {other:?}"),
            })
            .collect()
    }

    #[test]
    fn delivers_up_to_committed_watermark_only() {
        let mut h = hist(5);
        h.mark_committed(Zxid::new(Epoch(1), 3));
        let mut watermark = Zxid::ZERO;
        let mut out = Vec::new();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        assert_eq!(delivered(&out), (1..=3).map(|c| Zxid::new(Epoch(1), c)).collect::<Vec<_>>());
        assert_eq!(watermark, Zxid::new(Epoch(1), 3));
    }

    #[test]
    fn idempotent_when_nothing_new() {
        let mut h = hist(2);
        h.mark_committed(Zxid::new(Epoch(1), 2));
        let mut watermark = Zxid::ZERO;
        let mut out = Vec::new();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        out.clear();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn resumes_from_watermark() {
        let mut h = hist(4);
        h.mark_committed(Zxid::new(Epoch(1), 2));
        let mut watermark = Zxid::ZERO;
        let mut out = Vec::new();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        h.mark_committed(Zxid::new(Epoch(1), 4));
        out.clear();
        deliver_committed(
            &h,
            &mut watermark,
            &CoreMetrics::standalone(),
            &Tracer::disabled(),
            &mut out,
        );
        assert_eq!(delivered(&out), vec![Zxid::new(Epoch(1), 3), Zxid::new(Epoch(1), 4)]);
    }

    fn z(e: u32, c: u32) -> Zxid {
        Zxid::new(Epoch(e), c)
    }

    #[test]
    fn delivery_hash_agrees_for_identical_streams() {
        let mut a = DeliveryHash::new();
        let mut b = DeliveryHash::new();
        for c in 1..=200u32 {
            a.observe(z(1, c), &c.to_le_bytes());
            b.observe(z(1, c), &c.to_le_bytes());
        }
        assert_eq!(a.anchor(), b.anchor());
        assert_eq!(a.last(), b.last());
        assert_eq!(a.hash(), b.hash());
        // Stride checkpoints land at the same zxids with the same hashes.
        let ca: Vec<_> = a.checkpoints().collect();
        let cb: Vec<_> = b.checkpoints().collect();
        assert_eq!(ca, cb);
        assert_eq!(
            ca.iter().map(|c| c.zxid).collect::<Vec<_>>(),
            vec![z(1, 64), z(1, 128), z(1, 192)]
        );
    }

    #[test]
    fn delivery_hash_detects_payload_divergence() {
        let mut a = DeliveryHash::new();
        let mut b = DeliveryHash::new();
        for c in 1..=64u32 {
            a.observe(z(1, c), &c.to_le_bytes());
            let payload = if c == 40 { [0xFFu8; 4] } else { c.to_le_bytes() };
            b.observe(z(1, c), &payload);
        }
        // Same watermark and anchor, different content → different hash.
        assert_eq!(a.last(), b.last());
        assert_eq!(a.anchor(), b.anchor());
        assert_ne!(a.hash(), b.hash());
        let (ca, cb) = (a.checkpoints().next().unwrap(), b.checkpoints().next().unwrap());
        assert_eq!(ca.zxid, cb.zxid);
        assert_ne!(ca.hash, cb.hash);
    }

    #[test]
    fn delivery_hash_reanchors_on_epoch_change_and_late_boot() {
        let mut veteran = DeliveryHash::new();
        for c in 1..=100u32 {
            veteran.observe(z(1, c), b"x");
        }
        // Epoch roll: chain resets, old checkpoints dropped.
        veteran.observe(z(2, 1), b"y");
        assert_eq!(veteran.anchor(), z(2, 1));
        assert_eq!(veteran.checkpoints().count(), 0);

        // A replica that boots mid-epoch anchors where it starts — its
        // anchor differs from the veteran's, flagging the chains as
        // incomparable rather than falsely divergent.
        let mut late = DeliveryHash::new();
        late.observe(z(2, 1), b"y");
        assert_eq!(late.anchor(), veteran.anchor());
        assert_eq!(late.hash(), veteran.hash());
        let mut later = DeliveryHash::new();
        later.observe(z(2, 5), b"z");
        assert_ne!(later.anchor(), veteran.anchor());
    }

    #[test]
    fn delivery_hash_checkpoint_ring_is_bounded() {
        let mut d = DeliveryHash::new();
        for c in 1..=20_000u32 {
            d.observe(z(1, c), b"p");
        }
        let cps: Vec<_> = d.checkpoints().collect();
        assert_eq!(cps.len(), 128);
        assert_eq!(cps.last().unwrap().zxid, z(1, 19_968)); // newest stride point
        assert!(cps.windows(2).all(|w| w[0].zxid < w[1].zxid));
        assert!(d.version() >= 20_000);
    }
}
