//! Fundamental protocol identifiers: server ids, epochs, zxids, transactions.
//!
//! The zxid layout follows ZooKeeper exactly: a 64-bit transaction identifier
//! whose **high 32 bits are the epoch** of the primary that generated the
//! transaction and whose **low 32 bits are a per-epoch counter**. Ordering
//! zxids as plain integers therefore orders transactions first by epoch and
//! then by the order their primary generated them — the order in which PO
//! atomic broadcast must deliver them.

use bytes::Bytes;
use std::fmt;
use zab_wire::codec::{WireError, WireRead, WireWrite};

/// Unique identifier of a server (the paper's process id).
///
/// # Example
///
/// ```
/// use zab_core::ServerId;
/// let a = ServerId(1);
/// let b = ServerId(2);
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(pub u64);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An epoch of a primary instance (the paper's `e`).
///
/// Epochs increase every time a new primary is established; zxids embed the
/// epoch in their high 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The epoch before any primary has been established.
    pub const ZERO: Epoch = Epoch(0);

    /// The next epoch.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 32-bit epoch space (2^32 leader changes).
    pub fn next(self) -> Epoch {
        Epoch(self.0.checked_add(1).expect("epoch space exhausted"))
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Transaction identifier: `(epoch, counter)` packed into 64 bits.
///
/// `Zxid` is totally ordered; the integer order coincides with the
/// lexicographic order on `(epoch, counter)`, which is the global delivery
/// order Zab enforces.
///
/// # Example
///
/// ```
/// use zab_core::{Epoch, Zxid};
/// let z = Zxid::new(Epoch(3), 7);
/// assert_eq!(z.epoch(), Epoch(3));
/// assert_eq!(z.counter(), 7);
/// assert!(z < Zxid::new(Epoch(4), 0));
/// assert!(z > Zxid::new(Epoch(3), 6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Zxid(pub u64);

impl Zxid {
    /// The zero zxid: no transaction.
    pub const ZERO: Zxid = Zxid(0);

    /// Packs an epoch and counter into a zxid.
    pub fn new(epoch: Epoch, counter: u32) -> Zxid {
        Zxid(((epoch.0 as u64) << 32) | counter as u64)
    }

    /// The epoch component (high 32 bits).
    pub fn epoch(self) -> Epoch {
        Epoch((self.0 >> 32) as u32)
    }

    /// The per-epoch counter component (low 32 bits).
    pub fn counter(self) -> u32 {
        self.0 as u32
    }

    /// The zxid of the next transaction in the same epoch.
    ///
    /// # Panics
    ///
    /// Panics if the 32-bit counter would overflow; a primary generating
    /// 2^32 transactions in one epoch must first roll the epoch.
    pub fn next_in_epoch(self) -> Zxid {
        let c = self.counter().checked_add(1).expect("zxid counter overflow");
        Zxid::new(self.epoch(), c)
    }

    /// True if `self` is the transaction immediately following `prev`
    /// *within the same epoch*, or the first transaction of a later epoch.
    ///
    /// This is the gap-freedom check followers apply to the proposal stream.
    pub fn follows(self, prev: Zxid) -> bool {
        if self.epoch() == prev.epoch() {
            self.counter() == prev.counter().wrapping_add(1)
        } else {
            self.epoch() > prev.epoch() && self.counter() == 1
        }
    }
}

impl fmt::Display for Zxid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.epoch().0, self.counter())
    }
}

/// A transaction: an identifier plus the opaque incremental state change
/// computed by the primary (the paper's `⟨v, z⟩`).
///
/// The payload is reference-counted ([`Bytes`]) because the leader fans the
/// same transaction out to every follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// The transaction identifier assigned by the primary.
    pub zxid: Zxid,
    /// The incremental state change (opaque to the broadcast layer).
    pub data: Bytes,
}

impl Txn {
    /// Creates a transaction.
    pub fn new(zxid: Zxid, data: impl Into<Bytes>) -> Txn {
        Txn { zxid, data: data.into() }
    }

    /// Encodes the transaction onto a wire buffer.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le_wire(self.zxid.0);
        buf.put_bytes_wire(&self.data);
    }

    /// Decodes a transaction from a wire cursor.
    ///
    /// Decoding from a [`zab_wire::codec::BytesCursor`] makes `data` a
    /// zero-copy view of the cursor's backing buffer; a `&[u8]` cursor
    /// pays one owning copy.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the cursor is truncated or the payload
    /// length prefix is invalid.
    pub fn decode<R: WireRead>(cur: &mut R) -> Result<Txn, WireError> {
        let zxid = Zxid(cur.get_u64_le_wire()?);
        let data = cur.get_bytes_wire()?;
        Ok(Txn { zxid, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zxid_packs_epoch_and_counter() {
        let z = Zxid::new(Epoch(0xABCD), 0x1234_5678);
        assert_eq!(z.epoch(), Epoch(0xABCD));
        assert_eq!(z.counter(), 0x1234_5678);
        assert_eq!(z.0, 0x0000_ABCD_1234_5678);
    }

    #[test]
    fn zxid_integer_order_is_epoch_then_counter() {
        let a = Zxid::new(Epoch(1), u32::MAX);
        let b = Zxid::new(Epoch(2), 0);
        assert!(a < b);
        assert!(Zxid::new(Epoch(2), 1) > b);
    }

    #[test]
    fn next_in_epoch_increments_counter_only() {
        let z = Zxid::new(Epoch(5), 9);
        assert_eq!(z.next_in_epoch(), Zxid::new(Epoch(5), 10));
    }

    #[test]
    #[should_panic(expected = "zxid counter overflow")]
    fn next_in_epoch_panics_on_counter_overflow() {
        let _ = Zxid::new(Epoch(1), u32::MAX).next_in_epoch();
    }

    #[test]
    fn follows_within_epoch() {
        let prev = Zxid::new(Epoch(2), 7);
        assert!(Zxid::new(Epoch(2), 8).follows(prev));
        assert!(!Zxid::new(Epoch(2), 9).follows(prev));
        assert!(!Zxid::new(Epoch(2), 7).follows(prev));
    }

    #[test]
    fn follows_across_epochs_requires_counter_one() {
        let prev = Zxid::new(Epoch(2), 7);
        assert!(Zxid::new(Epoch(3), 1).follows(prev));
        assert!(Zxid::new(Epoch(5), 1).follows(prev));
        assert!(!Zxid::new(Epoch(3), 2).follows(prev));
        assert!(!Zxid::new(Epoch(1), 1).follows(prev));
    }

    #[test]
    fn first_txn_of_first_epoch_follows_zero() {
        // Epoch counters start at 1; ZERO is (e0, c0).
        assert!(Zxid::new(Epoch(1), 1).follows(Zxid::ZERO));
    }

    #[test]
    fn txn_encode_decode_round_trip() {
        let txn = Txn::new(Zxid::new(Epoch(9), 42), &b"delta"[..]);
        let mut buf = Vec::new();
        txn.encode(&mut buf);
        let mut cur = buf.as_slice();
        let back = Txn::decode(&mut cur).unwrap();
        assert_eq!(back, txn);
        assert!(cur.is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServerId(3).to_string(), "s3");
        assert_eq!(Epoch(4).to_string(), "e4");
        assert_eq!(Zxid::new(Epoch(4), 17).to_string(), "4:17");
    }
}
