//! Ensemble configuration and quorum systems.
//!
//! Zab is parameterized by a quorum system `Q` such that any two quorums
//! intersect (the paper assumes majorities). The default is
//! [`MajorityQuorum`]; [`WeightedQuorum`] generalizes it to ZooKeeper-style
//! weighted ensembles (e.g. observers get weight 0).

use crate::types::ServerId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::sync::Arc;

/// A quorum system over a fixed ensemble.
///
/// Implementations must guarantee the *intersection property*: any two sets
/// for which [`QuorumSystem::is_quorum`] returns `true` share at least one
/// server. All of Zab's safety arguments rest on it.
pub trait QuorumSystem: Debug + Send + Sync {
    /// True if `acked` forms a quorum.
    fn is_quorum(&self, acked: &BTreeSet<ServerId>) -> bool;

    /// The full ensemble membership.
    fn members(&self) -> &BTreeSet<ServerId>;
}

/// Simple majority quorums: `|acked| > n/2`.
#[derive(Debug, Clone)]
pub struct MajorityQuorum {
    members: BTreeSet<ServerId>,
}

impl MajorityQuorum {
    /// Creates a majority quorum system over `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: impl IntoIterator<Item = ServerId>) -> Self {
        let members: BTreeSet<ServerId> = members.into_iter().collect();
        assert!(!members.is_empty(), "ensemble must not be empty");
        MajorityQuorum { members }
    }
}

impl QuorumSystem for MajorityQuorum {
    fn is_quorum(&self, acked: &BTreeSet<ServerId>) -> bool {
        let voters = acked.intersection(&self.members).count();
        voters * 2 > self.members.len()
    }

    fn members(&self) -> &BTreeSet<ServerId> {
        &self.members
    }
}

/// Weighted quorums: a set is a quorum when its total weight strictly
/// exceeds half of the ensemble weight. Zero-weight members model
/// ZooKeeper observers: they receive the stream but never vote.
#[derive(Debug, Clone)]
pub struct WeightedQuorum {
    members: BTreeSet<ServerId>,
    weights: BTreeMap<ServerId, u64>,
    total: u64,
}

impl WeightedQuorum {
    /// Creates a weighted quorum system.
    ///
    /// # Panics
    ///
    /// Panics if no member has positive weight.
    pub fn new(weights: impl IntoIterator<Item = (ServerId, u64)>) -> Self {
        let weights: BTreeMap<ServerId, u64> = weights.into_iter().collect();
        let total: u64 = weights.values().sum();
        assert!(total > 0, "at least one member must have positive weight");
        let members = weights.keys().copied().collect();
        WeightedQuorum { members, weights, total }
    }
}

impl QuorumSystem for WeightedQuorum {
    fn is_quorum(&self, acked: &BTreeSet<ServerId>) -> bool {
        let acked_weight: u64 = acked.iter().filter_map(|id| self.weights.get(id)).sum();
        acked_weight * 2 > self.total
    }

    fn members(&self) -> &BTreeSet<ServerId> {
        &self.members
    }
}

/// How the leader disseminates broadcast traffic (PROPOSE/COMMIT) to
/// active followers. ACKs, pings, and sync streams are always
/// star-shaped regardless of topology: acks must reach the leader
/// directly for the quorum argument, and pings drive failure detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// The leader writes every broadcast frame to every active follower
    /// (the paper's shape; O(N) leader socket writes per transaction).
    #[default]
    Star,
    /// The leader partitions active followers into ⌈√m⌉-sized relay
    /// groups, writes each frame once per relay, and relays forward the
    /// same refcounted bytes to their group — O(√N) leader writes per
    /// transaction. Falls back to star below 4 active followers (a tree
    /// would only add a hop) and re-parents members of a failed relay
    /// directly to the leader until the next reassignment.
    Relay,
}

/// Static configuration shared by every server of an ensemble.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The quorum system (shared, immutable).
    pub quorum: Arc<dyn QuorumSystem>,
    /// Maximum number of proposals the leader keeps in flight
    /// (the paper's "multiple outstanding transactions"; requirement 1).
    pub max_outstanding: usize,
    /// Leader→follower ping period, in milliseconds of driver time.
    pub ping_interval_ms: u64,
    /// A follower abandons its leader after this long without traffic.
    pub follower_timeout_ms: u64,
    /// A leader abdicates if it cannot reach a quorum for this long.
    pub leader_timeout_ms: u64,
    /// A prospective leader abandons establishment (phases 1–2) after this
    /// long without completing it.
    pub establish_timeout_ms: u64,
    /// Follower lag (in transactions) above which synchronization uses a
    /// full snapshot (SNAP) instead of a log diff (DIFF).
    pub snap_threshold: u64,
    /// Client requests queued at the leader beyond the outstanding window;
    /// requests past this limit are rejected with back-pressure
    /// (`RejectReason::Overloaded`). Shed-don't-queue: the default is a
    /// small multiple of `max_outstanding`, not "effectively unbounded" —
    /// a deep standing queue only adds latency (every queued request waits
    /// behind the whole queue) without adding throughput, and the paper's
    /// offered-load curve plateaus precisely because excess load is
    /// refused at admission instead of accumulating.
    pub request_queue_limit: usize,
    /// Token-bucket budget (bytes of sync payload per second of driver
    /// time) shared by every in-flight catch-up sync the leader is
    /// shipping. Chunks past the budget wait for refills on `Tick`, so
    /// concurrent rejoining followers cannot starve PROPOSE fan-out.
    /// `0` disables pacing entirely: the whole sync plan is emitted in
    /// one burst with no per-chunk acks (the pre-pacing behavior).
    pub sync_rate_bytes_per_sec: u64,
    /// Dissemination topology for broadcast traffic (see [`Topology`]).
    pub topology: Topology,
}

impl ClusterConfig {
    /// Majority-quorum configuration with default timing parameters.
    ///
    /// # Example
    ///
    /// ```
    /// use zab_core::{ClusterConfig, ServerId};
    /// let cfg = ClusterConfig::majority((1..=3).map(ServerId));
    /// assert_eq!(cfg.ensemble_size(), 3);
    /// ```
    pub fn majority(members: impl IntoIterator<Item = ServerId>) -> Self {
        ClusterConfig {
            quorum: Arc::new(MajorityQuorum::new(members)),
            max_outstanding: 1000,
            ping_interval_ms: 50,
            follower_timeout_ms: 400,
            leader_timeout_ms: 400,
            establish_timeout_ms: 2000,
            snap_threshold: 10_000,
            request_queue_limit: 2_000,
            sync_rate_bytes_per_sec: 64 << 20,
            topology: Topology::Star,
        }
    }

    /// Number of servers in the ensemble.
    pub fn ensemble_size(&self) -> usize {
        self.quorum.members().len()
    }

    /// Iterates over ensemble members.
    pub fn members(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.quorum.members().iter().copied()
    }

    /// True if `acked` is a quorum under the configured system.
    pub fn is_quorum(&self, acked: &BTreeSet<ServerId>) -> bool {
        self.quorum.is_quorum(acked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> BTreeSet<ServerId> {
        v.iter().copied().map(ServerId).collect()
    }

    #[test]
    fn majority_of_three_is_two() {
        let q = MajorityQuorum::new(ids(&[1, 2, 3]));
        assert!(!q.is_quorum(&ids(&[1])));
        assert!(q.is_quorum(&ids(&[1, 2])));
        assert!(q.is_quorum(&ids(&[1, 2, 3])));
    }

    #[test]
    fn majority_of_five_is_three() {
        let q = MajorityQuorum::new(ids(&[1, 2, 3, 4, 5]));
        assert!(!q.is_quorum(&ids(&[1, 2])));
        assert!(q.is_quorum(&ids(&[1, 3, 5])));
    }

    #[test]
    fn non_members_do_not_count_toward_majority() {
        let q = MajorityQuorum::new(ids(&[1, 2, 3]));
        assert!(!q.is_quorum(&ids(&[1, 99, 100])));
    }

    #[test]
    fn majority_quorums_intersect() {
        // Exhaustively check the intersection property for n = 5.
        let members: Vec<u64> = (1..=5).collect();
        let q = MajorityQuorum::new(ids(&members));
        let subsets: Vec<BTreeSet<ServerId>> = (0u32..32)
            .map(|mask| {
                members
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &m)| ServerId(m))
                    .collect()
            })
            .filter(|s: &BTreeSet<ServerId>| q.is_quorum(s))
            .collect();
        for a in &subsets {
            for b in &subsets {
                assert!(a.intersection(b).next().is_some(), "{a:?} and {b:?} are disjoint quorums");
            }
        }
    }

    #[test]
    fn weighted_quorum_ignores_zero_weight_observers() {
        let q = WeightedQuorum::new([
            (ServerId(1), 1),
            (ServerId(2), 1),
            (ServerId(3), 1),
            (ServerId(4), 0), // observer
        ]);
        assert!(q.is_quorum(&ids(&[1, 2])));
        assert!(!q.is_quorum(&ids(&[1, 4])));
    }

    #[test]
    #[should_panic(expected = "ensemble must not be empty")]
    fn empty_ensemble_rejected() {
        let _ = MajorityQuorum::new(ids(&[]));
    }

    #[test]
    fn config_quorum_delegation() {
        let cfg = ClusterConfig::majority((1..=3).map(ServerId));
        assert!(cfg.is_quorum(&ids(&[2, 3])));
        assert!(!cfg.is_quorum(&ids(&[3])));
    }
}
