//! Protocol messages exchanged between Zab processes.
//!
//! Naming follows the paper with ZooKeeper's synchronization mechanics:
//!
//! | Paper (DSN'11)   | Here                 | Direction | Phase |
//! |------------------|----------------------|-----------|-------|
//! | `CEPOCH(f.p)`    | [`Message::FollowerInfo`]  | f → l | 1 |
//! | `NEWEPOCH(e')`   | [`Message::NewEpoch`]      | l → f | 1 |
//! | `ACK-E(f.a, hf)` | [`Message::AckEpoch`]      | f → l | 1 |
//! | `NEWLEADER(e',I)`| sync stream + [`Message::NewLeader`] | l → f | 2 |
//! | `ACK-LD`         | [`Message::AckNewLeader`]  | f → l | 2 |
//! | `COMMIT-LD`      | [`Message::UpToDate`]      | l → f | 2 |
//! | `PROPOSE(e',t)`  | [`Message::Propose`]       | l → f | 3 |
//! | `ACK(e',t)`      | [`Message::Ack`]           | f → l | 3 |
//! | `COMMIT(e',t)`   | [`Message::Commit`]        | l → f | 3 |
//!
//! Instead of carrying the full initial history inside `NEWLEADER` (as the
//! idealized algorithm does), the leader precedes it with one of
//! [`Message::SyncDiff`] / [`Message::SyncTrunc`] / [`Message::SyncSnap`] —
//! exactly ZooKeeper's DIFF/TRUNC/SNAP optimization. `Ping`/`Pong` carry the
//! failure-detector heartbeats that phase 3 relies on.
//!
//! All messages encode to a stable binary format via [`Message::encode`] /
//! [`Message::decode`]; the transport wraps them in checksummed frames.

use crate::types::{Epoch, ServerId, Txn, Zxid};
use bytes::Bytes;
use zab_wire::codec::{WireError, WireRead, WireWrite};

/// A Zab protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Phase 1 (f → l): announce the follower and its accepted epoch
    /// (the paper's `CEPOCH`). `last_zxid` lets the established-leader
    /// fast path plan synchronization without another round trip.
    FollowerInfo {
        /// Follower's durable `acceptedEpoch` (`f.p`).
        accepted_epoch: Epoch,
        /// Tail of the follower's accepted history.
        last_zxid: Zxid,
    },
    /// Phase 1 (l → f): the prospective leader proposes a new epoch
    /// (`NEWEPOCH(e')`).
    NewEpoch {
        /// The proposed epoch, strictly greater than any accepted epoch in
        /// the leader's info quorum.
        epoch: Epoch,
    },
    /// Phase 1 (f → l): the follower accepted the new epoch (`ACK-E`),
    /// reporting its `currentEpoch` (`f.a`) and history tail so the leader
    /// can pick the freshest history.
    AckEpoch {
        /// Follower's durable `currentEpoch`.
        current_epoch: Epoch,
        /// Tail of the follower's accepted history.
        last_zxid: Zxid,
    },
    /// Phase 2 (l → f): the follower's history is a prefix of the
    /// leader's — append these transactions.
    SyncDiff {
        /// Missing suffix in zxid order.
        txns: Vec<Txn>,
    },
    /// Phase 2 (l → f): the follower accepted transactions that did not
    /// survive the leader change — truncate, then append.
    SyncTrunc {
        /// Last zxid the follower keeps.
        truncate_to: Zxid,
        /// Leader's suffix after the truncation point.
        txns: Vec<Txn>,
    },
    /// Phase 2 (l → f): full state transfer; replaces the follower's
    /// application state and history.
    SyncSnap {
        /// Opaque application snapshot.
        snapshot: Bytes,
        /// The zxid the snapshot covers up to (inclusive).
        snapshot_zxid: Zxid,
        /// Leader's log suffix after the snapshot point.
        txns: Vec<Txn>,
    },
    /// Phase 2 (l → f): end of the sync stream (`NEWLEADER(e')`). The
    /// follower must durably adopt the epoch and synced history, then ack.
    NewLeader {
        /// The new epoch.
        epoch: Epoch,
    },
    /// Phase 2 (f → l): durable adoption complete (`ACK-LD`).
    AckNewLeader {
        /// Echo of the adopted epoch.
        epoch: Epoch,
        /// Tail of the follower's history after sync.
        last_zxid: Zxid,
    },
    /// Phase 2 (l → f): the leader has a quorum (`COMMIT-LD`): commit the
    /// synced prefix and start serving.
    UpToDate {
        /// Commit (and deliver) everything up to this zxid.
        commit_to: Zxid,
    },
    /// Phase 3 (l → f): a new proposal, carrying the leader's commit
    /// watermark so a saturated pipeline needs no separate `COMMIT`
    /// frame per quorum crossing.
    Propose {
        /// The proposed transaction.
        txn: Txn,
        /// The leader's highest committed zxid at proposal time — a
        /// cumulative commit-up-to watermark (see [`Message::Commit`]).
        /// Always strictly below `txn.zxid`; [`Zxid::ZERO`] on frames
        /// from peers predating the watermark (legacy tag).
        commit_up_to: Zxid,
    },
    /// Phase 3 (f → l): the proposal is durable at this follower. Acks are
    /// cumulative per the FIFO-channel assumption.
    Ack {
        /// Zxid of the acked proposal.
        zxid: Zxid,
    },
    /// Phase 3 (l → f): a quorum acked — deliver. Cumulative: everything
    /// up to and including `zxid` commits (the FIFO channel guarantees
    /// the follower has accepted that prefix).
    Commit {
        /// Commit watermark: the highest quorum-acked zxid.
        zxid: Zxid,
    },
    /// Heartbeat (l → f), also carrying the commit watermark so idle
    /// followers converge.
    Ping {
        /// Leader's highest committed zxid.
        last_committed: Zxid,
    },
    /// Heartbeat response (f → l).
    Pong {
        /// Follower's last accepted zxid (for observability).
        last_zxid: Zxid,
    },
    /// Phase 2 (f → l): flow-control ack for one sync-stream chunk. The
    /// leader releases the next `SyncDiff` chunk of a paced sync session
    /// only after the previous chunk is acknowledged, so a slow follower
    /// never accumulates its whole missing history in socket buffers.
    SyncAck {
        /// Tail of the follower's history after applying the chunk.
        last_zxid: Zxid,
    },
    /// Phase 3 (l → relay → f): a relayed broadcast frame. `inner` is the
    /// origin message's wire encoding, carried **verbatim**: the leader
    /// encodes the wrapped `Propose`/`Commit` once, every relay forwards
    /// the same refcounted bytes to its group members, and group members
    /// decode the identical frame the leader built — zero re-encoding on
    /// the relay path. Forwarded traffic may lag or duplicate the direct
    /// path after a topology change, so receivers treat any out-of-place
    /// forwarded frame as benign noise, never a protocol violation.
    Forward {
        /// The origin message's encoded bytes (a `Message`, length-free;
        /// the wrapper carries the length prefix on the wire).
        inner: Bytes,
    },
    /// Phase 3 (l → relay): assign this follower a relay group. Sent on
    /// the leader's FIFO channel, so ordering against subsequent
    /// [`Message::Forward`]s is guaranteed: every forward queued after
    /// the assignment fans out to exactly these members. An empty list
    /// demotes the relay back to a plain follower.
    RelayAssign {
        /// Group members this relay forwards broadcast frames to.
        members: Vec<ServerId>,
    },
}

// Wire tags. Stable: appended-to only.
const TAG_FOLLOWER_INFO: u8 = 1;
const TAG_NEW_EPOCH: u8 = 2;
const TAG_ACK_EPOCH: u8 = 3;
const TAG_SYNC_DIFF: u8 = 4;
const TAG_SYNC_TRUNC: u8 = 5;
const TAG_SYNC_SNAP: u8 = 6;
const TAG_NEW_LEADER: u8 = 7;
const TAG_ACK_NEW_LEADER: u8 = 8;
const TAG_UP_TO_DATE: u8 = 9;
const TAG_PROPOSE: u8 = 10;
const TAG_ACK: u8 = 11;
const TAG_COMMIT: u8 = 12;
const TAG_PING: u8 = 13;
const TAG_PONG: u8 = 14;
/// `PROPOSE` with a piggybacked commit watermark. Encoding always emits
/// this tag; plain [`TAG_PROPOSE`] still decodes (watermark
/// [`Zxid::ZERO`], i.e. "no information") so mixed-version ensembles
/// interoperate during a rolling upgrade.
const TAG_PROPOSE_COMMIT: u8 = 15;
/// Sync-stream chunk acknowledgement (paced catch-up flow control).
const TAG_SYNC_ACK: u8 = 16;
/// Relay-tree dissemination: a wrapped origin frame, forwarded verbatim.
const TAG_FORWARD: u8 = 17;
/// Relay-tree dissemination: group assignment for a relay.
const TAG_RELAY_ASSIGN: u8 = 18;

fn put_txns(buf: &mut Vec<u8>, txns: &[Txn]) {
    buf.put_u32_le_wire(txns.len() as u32);
    for t in txns {
        t.encode(buf);
    }
}

fn get_txns<R: WireRead>(cur: &mut R) -> Result<Vec<Txn>, WireError> {
    let n = cur.get_u32_le_wire()? as usize;
    // Bound preallocation by the remaining input; a lying count fails later.
    let mut txns = Vec::with_capacity(n.min(cur.remaining() / 9 + 1));
    for _ in 0..n {
        txns.push(Txn::decode(cur)?);
    }
    Ok(txns)
}

impl Message {
    /// Human-readable message kind, for traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::FollowerInfo { .. } => "FOLLOWERINFO",
            Message::NewEpoch { .. } => "NEWEPOCH",
            Message::AckEpoch { .. } => "ACKEPOCH",
            Message::SyncDiff { .. } => "DIFF",
            Message::SyncTrunc { .. } => "TRUNC",
            Message::SyncSnap { .. } => "SNAP",
            Message::NewLeader { .. } => "NEWLEADER",
            Message::AckNewLeader { .. } => "ACKNEWLEADER",
            Message::UpToDate { .. } => "UPTODATE",
            Message::Propose { .. } => "PROPOSE",
            Message::Ack { .. } => "ACK",
            Message::Commit { .. } => "COMMIT",
            Message::Ping { .. } => "PING",
            Message::Pong { .. } => "PONG",
            Message::SyncAck { .. } => "SYNCACK",
            Message::Forward { .. } => "FORWARD",
            Message::RelayAssign { .. } => "RELAYASSIGN",
        }
    }

    /// Encodes the message to its wire representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        self.encode_into(&mut buf);
        buf
    }

    /// Encodes the message by appending to `buf`, so callers composing a
    /// larger wire unit (e.g. a channel-tagged transport frame) need no
    /// intermediate allocation.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Message::FollowerInfo { accepted_epoch, last_zxid } => {
                buf.put_u8_wire(TAG_FOLLOWER_INFO);
                buf.put_u32_le_wire(accepted_epoch.0);
                buf.put_u64_le_wire(last_zxid.0);
            }
            Message::NewEpoch { epoch } => {
                buf.put_u8_wire(TAG_NEW_EPOCH);
                buf.put_u32_le_wire(epoch.0);
            }
            Message::AckEpoch { current_epoch, last_zxid } => {
                buf.put_u8_wire(TAG_ACK_EPOCH);
                buf.put_u32_le_wire(current_epoch.0);
                buf.put_u64_le_wire(last_zxid.0);
            }
            Message::SyncDiff { txns } => {
                buf.put_u8_wire(TAG_SYNC_DIFF);
                put_txns(buf, txns);
            }
            Message::SyncTrunc { truncate_to, txns } => {
                buf.put_u8_wire(TAG_SYNC_TRUNC);
                buf.put_u64_le_wire(truncate_to.0);
                put_txns(buf, txns);
            }
            Message::SyncSnap { snapshot, snapshot_zxid, txns } => {
                buf.put_u8_wire(TAG_SYNC_SNAP);
                buf.put_bytes_wire(snapshot);
                buf.put_u64_le_wire(snapshot_zxid.0);
                put_txns(buf, txns);
            }
            Message::NewLeader { epoch } => {
                buf.put_u8_wire(TAG_NEW_LEADER);
                buf.put_u32_le_wire(epoch.0);
            }
            Message::AckNewLeader { epoch, last_zxid } => {
                buf.put_u8_wire(TAG_ACK_NEW_LEADER);
                buf.put_u32_le_wire(epoch.0);
                buf.put_u64_le_wire(last_zxid.0);
            }
            Message::UpToDate { commit_to } => {
                buf.put_u8_wire(TAG_UP_TO_DATE);
                buf.put_u64_le_wire(commit_to.0);
            }
            Message::Propose { txn, commit_up_to } => {
                buf.put_u8_wire(TAG_PROPOSE_COMMIT);
                buf.put_u64_le_wire(commit_up_to.0);
                txn.encode(buf);
            }
            Message::Ack { zxid } => {
                buf.put_u8_wire(TAG_ACK);
                buf.put_u64_le_wire(zxid.0);
            }
            Message::Commit { zxid } => {
                buf.put_u8_wire(TAG_COMMIT);
                buf.put_u64_le_wire(zxid.0);
            }
            Message::Ping { last_committed } => {
                buf.put_u8_wire(TAG_PING);
                buf.put_u64_le_wire(last_committed.0);
            }
            Message::Pong { last_zxid } => {
                buf.put_u8_wire(TAG_PONG);
                buf.put_u64_le_wire(last_zxid.0);
            }
            Message::SyncAck { last_zxid } => {
                buf.put_u8_wire(TAG_SYNC_ACK);
                buf.put_u64_le_wire(last_zxid.0);
            }
            Message::Forward { inner } => {
                buf.put_u8_wire(TAG_FORWARD);
                buf.put_bytes_wire(inner);
            }
            Message::RelayAssign { members } => {
                buf.put_u8_wire(TAG_RELAY_ASSIGN);
                buf.put_u32_le_wire(members.len() as u32);
                for m in members {
                    buf.put_u64_le_wire(m.0);
                }
            }
        }
    }

    /// Decodes a message from a borrowed wire buffer.
    ///
    /// Payload-carrying fields are copied into owned [`Bytes`]; use
    /// [`Message::decode_bytes`] on a refcounted frame payload to avoid
    /// that copy.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, bad length prefixes, or an
    /// unknown tag.
    pub fn decode(mut cur: &[u8]) -> Result<Message, WireError> {
        Message::decode_from(&mut cur)
    }

    /// Decodes a message from an owned, refcounted frame payload.
    ///
    /// Transaction data and snapshot fields come back as zero-copy views
    /// of `buf` — the single receive-buffer allocation is shared by every
    /// downstream holder of the payload (log append, fan-out, delivery).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, bad length prefixes, or an
    /// unknown tag.
    pub fn decode_bytes(buf: Bytes) -> Result<Message, WireError> {
        Message::decode_from(&mut zab_wire::codec::BytesCursor::new(buf))
    }

    /// Decodes a message from any wire cursor.
    fn decode_from<R: WireRead>(cur: &mut R) -> Result<Message, WireError> {
        let tag = cur.get_u8_wire()?;
        let msg = match tag {
            TAG_FOLLOWER_INFO => Message::FollowerInfo {
                accepted_epoch: Epoch(cur.get_u32_le_wire()?),
                last_zxid: Zxid(cur.get_u64_le_wire()?),
            },
            TAG_NEW_EPOCH => Message::NewEpoch { epoch: Epoch(cur.get_u32_le_wire()?) },
            TAG_ACK_EPOCH => Message::AckEpoch {
                current_epoch: Epoch(cur.get_u32_le_wire()?),
                last_zxid: Zxid(cur.get_u64_le_wire()?),
            },
            TAG_SYNC_DIFF => Message::SyncDiff { txns: get_txns(cur)? },
            TAG_SYNC_TRUNC => Message::SyncTrunc {
                truncate_to: Zxid(cur.get_u64_le_wire()?),
                txns: get_txns(cur)?,
            },
            TAG_SYNC_SNAP => Message::SyncSnap {
                snapshot: cur.get_bytes_wire()?,
                snapshot_zxid: Zxid(cur.get_u64_le_wire()?),
                txns: get_txns(cur)?,
            },
            TAG_NEW_LEADER => Message::NewLeader { epoch: Epoch(cur.get_u32_le_wire()?) },
            TAG_ACK_NEW_LEADER => Message::AckNewLeader {
                epoch: Epoch(cur.get_u32_le_wire()?),
                last_zxid: Zxid(cur.get_u64_le_wire()?),
            },
            TAG_UP_TO_DATE => Message::UpToDate { commit_to: Zxid(cur.get_u64_le_wire()?) },
            TAG_PROPOSE => Message::Propose { txn: Txn::decode(cur)?, commit_up_to: Zxid::ZERO },
            TAG_PROPOSE_COMMIT => {
                let commit_up_to = Zxid(cur.get_u64_le_wire()?);
                Message::Propose { txn: Txn::decode(cur)?, commit_up_to }
            }
            TAG_ACK => Message::Ack { zxid: Zxid(cur.get_u64_le_wire()?) },
            TAG_COMMIT => Message::Commit { zxid: Zxid(cur.get_u64_le_wire()?) },
            TAG_PING => Message::Ping { last_committed: Zxid(cur.get_u64_le_wire()?) },
            TAG_PONG => Message::Pong { last_zxid: Zxid(cur.get_u64_le_wire()?) },
            TAG_SYNC_ACK => Message::SyncAck { last_zxid: Zxid(cur.get_u64_le_wire()?) },
            TAG_FORWARD => Message::Forward { inner: cur.get_bytes_wire()? },
            TAG_RELAY_ASSIGN => {
                let n = cur.get_u32_le_wire()? as usize;
                let mut members = Vec::with_capacity(n.min(cur.remaining() / 8 + 1));
                for _ in 0..n {
                    members.push(ServerId(cur.get_u64_le_wire()?));
                }
                Message::RelayAssign { members }
            }
            tag => return Err(WireError::InvalidTag { tag, context: "Message" }),
        };
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Epoch;

    fn txn(e: u32, c: u32) -> Txn {
        Txn::new(Zxid::new(Epoch(e), c), vec![0xAA; 3])
    }

    fn all_variants() -> Vec<Message> {
        vec![
            Message::FollowerInfo { accepted_epoch: Epoch(3), last_zxid: Zxid::new(Epoch(2), 9) },
            Message::NewEpoch { epoch: Epoch(4) },
            Message::AckEpoch { current_epoch: Epoch(3), last_zxid: Zxid::new(Epoch(3), 1) },
            Message::SyncDiff { txns: vec![txn(1, 1), txn(1, 2)] },
            Message::SyncDiff { txns: vec![] },
            Message::SyncTrunc { truncate_to: Zxid::new(Epoch(1), 1), txns: vec![txn(2, 1)] },
            Message::SyncSnap {
                snapshot: Bytes::from_static(b"snapshot-bytes"),
                snapshot_zxid: Zxid::new(Epoch(2), 50),
                txns: vec![txn(2, 51)],
            },
            Message::NewLeader { epoch: Epoch(4) },
            Message::AckNewLeader { epoch: Epoch(4), last_zxid: Zxid::new(Epoch(3), 7) },
            Message::UpToDate { commit_to: Zxid::new(Epoch(3), 7) },
            Message::Propose { txn: txn(4, 1), commit_up_to: Zxid::ZERO },
            Message::Propose { txn: txn(4, 2), commit_up_to: Zxid::new(Epoch(4), 1) },
            Message::Ack { zxid: Zxid::new(Epoch(4), 1) },
            Message::Commit { zxid: Zxid::new(Epoch(4), 1) },
            Message::Ping { last_committed: Zxid::new(Epoch(4), 1) },
            Message::Pong { last_zxid: Zxid::new(Epoch(4), 1) },
            Message::SyncAck { last_zxid: Zxid::new(Epoch(4), 1) },
            Message::Forward {
                inner: Bytes::from(
                    Message::Propose { txn: txn(4, 3), commit_up_to: Zxid::new(Epoch(4), 2) }
                        .encode(),
                ),
            },
            Message::RelayAssign { members: vec![ServerId(3), ServerId(7)] },
            Message::RelayAssign { members: vec![] },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in all_variants() {
            let wire = msg.encode();
            let back = Message::decode(&wire)
                .unwrap_or_else(|e| panic!("decode failed for {}: {e}", msg.kind()));
            assert_eq!(back, msg, "round trip mismatch for {}", msg.kind());
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(
            Message::decode(&[0xFF]),
            Err(WireError::InvalidTag { tag: 0xFF, context: "Message" })
        );
    }

    #[test]
    fn truncated_message_rejected() {
        let wire =
            Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::new(Epoch(1), 0) }.encode();
        for cut in 0..wire.len() {
            assert!(
                Message::decode(&wire[..cut]).is_err(),
                "decode of {cut}-byte prefix unexpectedly succeeded"
            );
        }
    }

    #[test]
    fn kind_names_are_distinct_per_tag() {
        let mut kinds: Vec<&str> = all_variants().iter().map(|m| m.kind()).collect();
        kinds.dedup();
        // all_variants has duplicate kinds (two SyncDiff, two Propose,
        // and two RelayAssign cases).
        let unique: std::collections::BTreeSet<&str> = kinds.iter().copied().collect();
        assert_eq!(unique.len(), 17);
    }

    #[test]
    fn forward_wrapped_propose_is_byte_identical_to_origin() {
        // The relay contract: the leader wraps the origin frame's exact
        // bytes, and unwrapping on the other side yields those exact
        // bytes back — so a group member decodes the identical Propose
        // the leader encoded, no matter how many relays it crossed.
        let origin = Message::Propose {
            txn: Txn::new(Zxid::new(Epoch(7), 42), vec![0x5A; 128]),
            commit_up_to: Zxid::new(Epoch(7), 40),
        };
        let origin_wire = origin.encode();
        let wrapped = Message::Forward { inner: Bytes::from(origin_wire.clone()) };
        let wire = wrapped.encode();
        let Message::Forward { inner } = Message::decode(&wire).expect("forward decodes") else {
            panic!("decoded to a different variant");
        };
        assert_eq!(&inner[..], &origin_wire[..], "inner bytes changed in transit");
        assert_eq!(Message::decode_bytes(inner).expect("inner decodes"), origin);
    }

    #[test]
    fn forward_round_trips_many_inner_shapes() {
        // Lightweight property sweep: for every variant, wrapping its
        // encoding in a Forward and unwrapping returns identical bytes,
        // including through a double-wrap (relay of a relay).
        for origin in all_variants() {
            let origin_wire = Bytes::from(origin.encode());
            let once = Message::Forward { inner: origin_wire.clone() };
            let twice = Message::Forward { inner: Bytes::from(once.encode()) };
            let outer = Message::decode(&twice.encode()).expect("outer decodes");
            let Message::Forward { inner: mid } = outer else { panic!("not a forward") };
            let Message::Forward { inner } = Message::decode_bytes(mid).expect("mid decodes")
            else {
                panic!("not a nested forward");
            };
            assert_eq!(&inner[..], &origin_wire[..], "bytes diverged for {}", origin.kind());
        }
    }

    #[test]
    fn legacy_propose_tag_decodes_with_zero_watermark() {
        // A pre-watermark peer sends TAG_PROPOSE with just the txn; it
        // must decode as a Propose carrying the "no information"
        // watermark.
        let t = txn(4, 1);
        let mut wire = vec![TAG_PROPOSE];
        t.encode(&mut wire);
        assert_eq!(
            Message::decode(&wire).expect("legacy decode"),
            Message::Propose { txn: t, commit_up_to: Zxid::ZERO }
        );
    }

    #[test]
    fn lying_txn_count_fails_without_huge_allocation() {
        let mut wire = vec![TAG_SYNC_DIFF];
        wire.put_u32_le_wire(u32::MAX); // claims 4 billion txns
        assert!(Message::decode(&wire).is_err());
    }
}
