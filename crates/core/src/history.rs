//! The accepted-transaction history (`h` in the paper) and synchronization
//! planning (DIFF / TRUNC / SNAP).
//!
//! Every process maintains a history of *accepted* transactions in zxid
//! order, together with the prefix that is known *committed*. During
//! Phase 2 (synchronization) the new leader compares a follower's last zxid
//! against its own history and picks one of ZooKeeper's three strategies:
//!
//! - **DIFF** — the follower's history is a prefix of the leader's: send the
//!   missing suffix.
//! - **TRUNC** — the follower accepted transactions that did not survive the
//!   leader change: tell it to truncate back to the last common point, then
//!   send the suffix.
//! - **SNAP** — the follower is so far behind that the leader no longer
//!   retains the needed log suffix (it was compacted into a snapshot), or
//!   the diff would exceed the configured threshold: ship a full snapshot.

use crate::types::{Txn, Zxid};

/// How a leader brings one follower up to date (Phase 2 decision).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncPlan {
    /// Send the given suffix of transactions; the follower's history is a
    /// prefix of the leader's.
    Diff {
        /// Transactions the follower is missing, in zxid order.
        txns: Vec<Txn>,
    },
    /// The follower must first discard transactions after `truncate_to`,
    /// then apply `txns`.
    Trunc {
        /// Last zxid the follower keeps.
        truncate_to: Zxid,
        /// Transactions to apply after truncating.
        txns: Vec<Txn>,
    },
    /// Ship a full application snapshot; the follower replaces its state.
    /// The snapshot bytes are produced by the application at send time.
    Snap,
}

/// In-memory accepted history with a committed watermark.
///
/// Invariants:
/// - transactions are strictly increasing by zxid,
/// - every transaction's zxid is greater than [`History::base`] (the point
///   up to which the log has been compacted into a snapshot),
/// - `last_committed` never exceeds the last accepted zxid and never
///   retreats.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Zxid of the last transaction folded into the base snapshot; `ZERO`
    /// if the history is complete from the beginning of time.
    base: Zxid,
    /// Accepted transactions, ascending by zxid, all `> base`.
    txns: Vec<Txn>,
    /// Highest zxid known committed (delivered or deliverable).
    last_committed: Zxid,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Reconstructs a history from recovered storage.
    ///
    /// # Panics
    ///
    /// Panics if `txns` is not strictly ascending or contains zxids at or
    /// below `base` — recovered storage violating this is corrupt.
    pub fn from_recovered(base: Zxid, txns: Vec<Txn>, last_committed: Zxid) -> History {
        let mut prev = base;
        for t in &txns {
            assert!(t.zxid > prev, "recovered history out of order at {}", t.zxid);
            prev = t.zxid;
        }
        let mut h = History { base, txns, last_committed: Zxid::ZERO };
        let cap = h.last_zxid();
        h.last_committed = last_committed.min(cap).max(base);
        h
    }

    /// The compaction point: transactions at or below this zxid live only
    /// in the snapshot.
    pub fn base(&self) -> Zxid {
        self.base
    }

    /// Zxid of the most recently accepted transaction (or the base if the
    /// suffix is empty).
    pub fn last_zxid(&self) -> Zxid {
        self.txns.last().map_or(self.base, |t| t.zxid)
    }

    /// Highest committed zxid.
    pub fn last_committed(&self) -> Zxid {
        self.last_committed
    }

    /// Number of accepted-but-retained transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True if no transactions are retained.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// All retained transactions in order.
    pub fn txns(&self) -> &[Txn] {
        &self.txns
    }

    /// Accepts a transaction at the tail of the history.
    ///
    /// # Panics
    ///
    /// Panics if `txn.zxid` is not greater than the current last zxid;
    /// callers (the automata) must reject out-of-order proposals first.
    pub fn append(&mut self, txn: Txn) {
        assert!(
            txn.zxid > self.last_zxid(),
            "append out of order: {} after {}",
            txn.zxid,
            self.last_zxid()
        );
        self.txns.push(txn);
    }

    /// True if `zxid` denotes a point on this history: the base, or a
    /// retained transaction.
    pub fn contains_point(&self, zxid: Zxid) -> bool {
        zxid == self.base || self.index_of(zxid).is_some()
    }

    /// Returns the transaction with exactly this zxid, if retained.
    pub fn get(&self, zxid: Zxid) -> Option<&Txn> {
        self.index_of(zxid).map(|i| &self.txns[i])
    }

    fn index_of(&self, zxid: Zxid) -> Option<usize> {
        self.txns.binary_search_by_key(&zxid, |t| t.zxid).ok()
    }

    /// The greatest point of this history at or below `z`: the base, or a
    /// retained transaction's zxid. Used by a follower to fall back when a
    /// leader's TRUNC references a point it does not have.
    pub fn last_point_at_or_below(&self, z: Zxid) -> Zxid {
        let idx = self.txns.partition_point(|t| t.zxid <= z);
        if idx == 0 {
            self.base
        } else {
            self.txns[idx - 1].zxid
        }
    }

    /// The retained transactions with zxid strictly greater than `after`.
    pub fn txns_after(&self, after: Zxid) -> &[Txn] {
        let start = self.txns.partition_point(|t| t.zxid <= after);
        &self.txns[start..]
    }

    /// Discards all transactions with zxid strictly greater than `to`.
    /// Returns the number of discarded transactions.
    ///
    /// # Panics
    ///
    /// Panics if `to < base`: those transactions are already immutable
    /// snapshot state and cannot be truncated away.
    pub fn truncate_to(&mut self, to: Zxid) -> usize {
        assert!(to >= self.base, "cannot truncate into the snapshot base");
        let keep = self.txns.partition_point(|t| t.zxid <= to);
        let dropped = self.txns.len() - keep;
        self.txns.truncate(keep);
        if self.last_committed > self.last_zxid() {
            self.last_committed = self.last_zxid();
        }
        dropped
    }

    /// Advances the committed watermark to `zxid` (no-op if already past).
    ///
    /// # Panics
    ///
    /// Panics if `zxid` is beyond the accepted history: commit of an
    /// unknown transaction indicates a protocol bug upstream.
    pub fn mark_committed(&mut self, zxid: Zxid) {
        assert!(
            zxid <= self.last_zxid(),
            "commit {} beyond accepted history {}",
            zxid,
            self.last_zxid()
        );
        if zxid > self.last_committed {
            self.last_committed = zxid;
        }
    }

    /// Compacts the history: transactions at or below `through` are folded
    /// into the snapshot and dropped from memory. Only committed
    /// transactions may be compacted.
    ///
    /// # Panics
    ///
    /// Panics if `through` exceeds the committed watermark.
    pub fn purge_through(&mut self, through: Zxid) {
        assert!(through <= self.last_committed, "cannot purge uncommitted transactions");
        if through <= self.base {
            return;
        }
        let drop = self.txns.partition_point(|t| t.zxid <= through);
        self.txns.drain(..drop);
        self.base = through;
    }

    /// Replaces the entire history after installing a snapshot whose state
    /// covers everything up to `snapshot_zxid`.
    pub fn reset_to_snapshot(&mut self, snapshot_zxid: Zxid) {
        self.base = snapshot_zxid;
        self.txns.clear();
        self.last_committed = snapshot_zxid;
    }

    /// Phase-2 planning: how to bring a follower whose last zxid is
    /// `follower_last` up to this (the leader's) history.
    ///
    /// `snap_threshold` bounds the size of a DIFF/TRUNC suffix; larger gaps
    /// fall back to SNAP, mirroring ZooKeeper's snapCount heuristic.
    pub fn plan_sync(&self, follower_last: Zxid, snap_threshold: u64) -> SyncPlan {
        // The follower predates our compaction point: only a snapshot can
        // restore the missing prefix.
        if follower_last < self.base {
            return SyncPlan::Snap;
        }
        if self.contains_point(follower_last) {
            let txns = self.txns_after(follower_last);
            if txns.len() as u64 > snap_threshold {
                return SyncPlan::Snap;
            }
            return SyncPlan::Diff { txns: txns.to_vec() };
        }
        // Divergent follower: truncate to the last point of ours at or
        // below its last zxid, then send our suffix from there.
        let idx = self.txns.partition_point(|t| t.zxid <= follower_last);
        let truncate_to = if idx == 0 { self.base } else { self.txns[idx - 1].zxid };
        let txns = self.txns_after(truncate_to);
        if txns.len() as u64 > snap_threshold {
            return SyncPlan::Snap;
        }
        SyncPlan::Trunc { truncate_to, txns: txns.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Epoch;

    fn txn(e: u32, c: u32) -> Txn {
        Txn::new(Zxid::new(Epoch(e), c), vec![e as u8, c as u8])
    }

    fn history(items: &[(u32, u32)]) -> History {
        let mut h = History::new();
        for &(e, c) in items {
            h.append(txn(e, c));
        }
        h
    }

    #[test]
    fn append_and_query() {
        let h = history(&[(1, 1), (1, 2), (2, 1)]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.last_zxid(), Zxid::new(Epoch(2), 1));
        assert!(h.contains_point(Zxid::new(Epoch(1), 2)));
        assert!(!h.contains_point(Zxid::new(Epoch(1), 3)));
        assert!(h.contains_point(Zxid::ZERO)); // the empty prefix
    }

    #[test]
    #[should_panic(expected = "append out of order")]
    fn out_of_order_append_panics() {
        let mut h = history(&[(1, 2)]);
        h.append(txn(1, 1));
    }

    #[test]
    fn txns_after_returns_suffix() {
        let h = history(&[(1, 1), (1, 2), (1, 3)]);
        let suffix = h.txns_after(Zxid::new(Epoch(1), 1));
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].zxid, Zxid::new(Epoch(1), 2));
        assert!(h.txns_after(Zxid::new(Epoch(1), 3)).is_empty());
        assert_eq!(h.txns_after(Zxid::ZERO).len(), 3);
    }

    #[test]
    fn truncate_drops_suffix_and_caps_commit() {
        let mut h = history(&[(1, 1), (1, 2), (1, 3)]);
        h.mark_committed(Zxid::new(Epoch(1), 3));
        assert_eq!(h.truncate_to(Zxid::new(Epoch(1), 1)), 2);
        assert_eq!(h.last_zxid(), Zxid::new(Epoch(1), 1));
        assert_eq!(h.last_committed(), Zxid::new(Epoch(1), 1));
    }

    #[test]
    fn commit_watermark_is_monotone() {
        let mut h = history(&[(1, 1), (1, 2)]);
        h.mark_committed(Zxid::new(Epoch(1), 2));
        h.mark_committed(Zxid::new(Epoch(1), 1)); // stale commit: no-op
        assert_eq!(h.last_committed(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    #[should_panic(expected = "beyond accepted history")]
    fn commit_of_unknown_txn_panics() {
        let mut h = history(&[(1, 1)]);
        h.mark_committed(Zxid::new(Epoch(1), 5));
    }

    #[test]
    fn purge_moves_base() {
        let mut h = history(&[(1, 1), (1, 2), (1, 3)]);
        h.mark_committed(Zxid::new(Epoch(1), 2));
        h.purge_through(Zxid::new(Epoch(1), 2));
        assert_eq!(h.base(), Zxid::new(Epoch(1), 2));
        assert_eq!(h.len(), 1);
        assert_eq!(h.last_zxid(), Zxid::new(Epoch(1), 3));
    }

    #[test]
    fn plan_sync_equal_histories_is_empty_diff() {
        let h = history(&[(1, 1), (1, 2)]);
        assert_eq!(h.plan_sync(Zxid::new(Epoch(1), 2), 100), SyncPlan::Diff { txns: vec![] });
    }

    #[test]
    fn plan_sync_prefix_follower_gets_diff() {
        let h = history(&[(1, 1), (1, 2), (1, 3)]);
        match h.plan_sync(Zxid::new(Epoch(1), 1), 100) {
            SyncPlan::Diff { txns } => {
                assert_eq!(txns.len(), 2);
                assert_eq!(txns[0].zxid, Zxid::new(Epoch(1), 2));
            }
            other => panic!("expected diff, got {other:?}"),
        }
    }

    #[test]
    fn plan_sync_empty_follower_gets_full_diff() {
        let h = history(&[(1, 1), (1, 2)]);
        match h.plan_sync(Zxid::ZERO, 100) {
            SyncPlan::Diff { txns } => assert_eq!(txns.len(), 2),
            other => panic!("expected diff, got {other:?}"),
        }
    }

    #[test]
    fn plan_sync_divergent_follower_gets_trunc() {
        // Leader: (1,1) (2,1). Follower accepted (1,1) (1,2) where (1,2)
        // died with epoch 1 — the paper's leader-change discard case.
        let h = history(&[(1, 1), (2, 1)]);
        match h.plan_sync(Zxid::new(Epoch(1), 2), 100) {
            SyncPlan::Trunc { truncate_to, txns } => {
                assert_eq!(truncate_to, Zxid::new(Epoch(1), 1));
                assert_eq!(txns.len(), 1);
                assert_eq!(txns[0].zxid, Zxid::new(Epoch(2), 1));
            }
            other => panic!("expected trunc, got {other:?}"),
        }
    }

    #[test]
    fn plan_sync_follower_ahead_of_leader_truncates_to_leader_tail() {
        let h = history(&[(1, 1)]);
        match h.plan_sync(Zxid::new(Epoch(1), 5), 100) {
            SyncPlan::Trunc { truncate_to, txns } => {
                assert_eq!(truncate_to, Zxid::new(Epoch(1), 1));
                assert!(txns.is_empty());
            }
            other => panic!("expected trunc, got {other:?}"),
        }
    }

    #[test]
    fn plan_sync_behind_compaction_point_gets_snap() {
        let mut h = history(&[(1, 1), (1, 2), (1, 3)]);
        h.mark_committed(Zxid::new(Epoch(1), 3));
        h.purge_through(Zxid::new(Epoch(1), 2));
        assert_eq!(h.plan_sync(Zxid::new(Epoch(1), 1), 100), SyncPlan::Snap);
        assert_eq!(h.plan_sync(Zxid::ZERO, 100), SyncPlan::Snap);
    }

    #[test]
    fn plan_sync_large_gap_gets_snap() {
        let mut h = History::new();
        for c in 1..=50 {
            h.append(txn(1, c));
        }
        assert_eq!(h.plan_sync(Zxid::ZERO, 10), SyncPlan::Snap);
        assert!(matches!(h.plan_sync(Zxid::new(Epoch(1), 45), 10), SyncPlan::Diff { .. }));
    }

    #[test]
    fn recovered_history_caps_commit_watermark() {
        let txns = vec![txn(1, 1), txn(1, 2)];
        let h = History::from_recovered(Zxid::ZERO, txns, Zxid::new(Epoch(9), 9));
        assert_eq!(h.last_committed(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn recovered_history_rejects_disorder() {
        let txns = vec![txn(1, 2), txn(1, 1)];
        let _ = History::from_recovered(Zxid::ZERO, txns, Zxid::ZERO);
    }

    #[test]
    fn reset_to_snapshot_clears_everything() {
        let mut h = history(&[(1, 1), (1, 2)]);
        h.reset_to_snapshot(Zxid::new(Epoch(3), 100));
        assert_eq!(h.base(), Zxid::new(Epoch(3), 100));
        assert_eq!(h.last_zxid(), Zxid::new(Epoch(3), 100));
        assert_eq!(h.last_committed(), Zxid::new(Epoch(3), 100));
        assert!(h.is_empty());
    }
}
