//! The follower automaton (the paper's follower protocol, phases 1–3).
//!
//! A [`Follower`] incarnation is bound to one prospective leader (the
//! outcome of Phase 0 leader election). It walks through:
//!
//! 1. **Discovery** — announce itself (`FOLLOWERINFO`), acknowledge the
//!    leader's `NEWEPOCH` after durably updating `acceptedEpoch`.
//! 2. **Synchronization** — apply the DIFF/TRUNC/SNAP stream, durably adopt
//!    `currentEpoch` and the synced history, acknowledge `NEWLEADER`, and
//!    on `UPTODATE` commit the synced prefix and activate.
//! 3. **Broadcast** — accept pipelined proposals (persist, then ack), and
//!    deliver on commit, in zxid order, gap-free.
//!
//! Any protocol violation, stale epoch, timeout, or loss of the leader
//! connection ends the incarnation with [`Action::GoToElection`]; the
//! process then runs election again and builds a fresh automaton from its
//! recovered [`PersistentState`].

use crate::config::ClusterConfig;
use crate::delivery::deliver_committed;
use crate::events::{Action, Input, PersistRequest, PersistToken, PersistentState, RejectReason};
use crate::history::History;
use crate::messages::Message;
use crate::metrics::CoreMetrics;
use crate::types::{Epoch, ServerId, Txn, Zxid};
use bytes::Bytes;
use std::collections::BTreeMap;
use zab_trace::{Stage, Tracer};

/// Externally visible follower phase, for tests and observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerStatus {
    /// Waiting for the leader's `NEWEPOCH` (or fast-path sync stream).
    Discovering,
    /// Processing the synchronization stream / awaiting `UPTODATE`.
    Syncing,
    /// Active: accepting proposals and delivering commits.
    Active,
    /// The incarnation ended; a new election is required.
    Defunct,
}

/// What a pending durability token completes.
// The `Ack` prefix mirrors the protocol message each completion triggers.
#[allow(clippy::enum_variant_names)]
#[derive(Debug)]
enum Pending {
    /// `acceptedEpoch` persisted → send `ACKEPOCH`.
    AckEpoch,
    /// Sync stream + `currentEpoch` persisted → send `ACKNEWLEADER`.
    AckNewLeader,
    /// A proposal persisted → ack it (cumulative).
    AckProposal(Zxid),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Discovering,
    /// Receiving the sync stream; `adopting` is set once `NEWLEADER` was
    /// seen and the durable adoption is in flight or acknowledged.
    Syncing {
        acked_new_leader: bool,
    },
    Broadcasting,
    Defunct,
}

/// The follower protocol automaton. Drive it with [`Follower::handle`].
#[derive(Debug)]
pub struct Follower {
    id: ServerId,
    leader: ServerId,
    config: ClusterConfig,
    accepted_epoch: Epoch,
    current_epoch: Epoch,
    history: History,
    delivered_to: Zxid,
    phase: Phase,
    now_ms: u64,
    last_leader_contact_ms: u64,
    next_token: u64,
    pending: BTreeMap<PersistToken, Pending>,
    /// Relay-tree dissemination: the group members this follower forwards
    /// leader-origin [`Message::Forward`] frames to. Empty for plain
    /// followers (and under star topology). Assigned by the leader via
    /// [`Message::RelayAssign`] on the same FIFO channel as the forwards,
    /// so an assignment orders exactly against the frames it governs.
    relay_group: Vec<ServerId>,
    /// Instrument bundle (standalone by default; see
    /// [`Follower::set_metrics`]).
    metrics: CoreMetrics,
    /// Flight recorder handle (disabled by default; see
    /// [`Follower::set_tracer`]).
    tracer: Tracer,
}

impl Follower {
    /// Creates a follower incarnation bound to `leader` and returns it with
    /// its initial actions (sending `FOLLOWERINFO`).
    ///
    /// `state` is the durable protocol state recovered from storage.
    /// `applied_to` is the zxid the driver's application has already
    /// applied up to (its snapshot point after a crash, or its live state
    /// when re-electing without one) — delivery resumes after it, so the
    /// application never sees a transaction twice within its own lifetime.
    /// `now_ms` is the driver's current clock.
    pub fn new(
        id: ServerId,
        leader: ServerId,
        config: ClusterConfig,
        state: PersistentState,
        applied_to: Zxid,
        now_ms: u64,
    ) -> (Follower, Vec<Action>) {
        let delivered_to = applied_to.max(state.history.base());
        let f = Follower {
            id,
            leader,
            config,
            accepted_epoch: state.accepted_epoch,
            current_epoch: state.current_epoch,
            history: state.history,
            delivered_to,
            phase: Phase::Discovering,
            now_ms,
            last_leader_contact_ms: now_ms,
            next_token: 0,
            pending: BTreeMap::new(),
            relay_group: Vec::new(),
            metrics: CoreMetrics::standalone(),
            tracer: Tracer::disabled(),
        };
        let actions = vec![Action::Send {
            to: leader,
            msg: Message::FollowerInfo {
                accepted_epoch: f.accepted_epoch,
                last_zxid: f.history.last_zxid(),
            },
        }];
        (f, actions)
    }

    /// This follower's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Injects the instrument bundle this automaton records into,
    /// replacing the default standalone instruments. Call right after
    /// construction, before driving inputs.
    pub fn set_metrics(&mut self, metrics: CoreMetrics) {
        self.metrics = metrics;
    }

    /// Injects the flight-recorder handle this automaton records lifecycle
    /// events into (watermark-advance, deliver). Call right after
    /// construction, before driving inputs.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The leader this incarnation follows.
    pub fn leader(&self) -> ServerId {
        self.leader
    }

    /// The relay group this follower currently forwards broadcast frames
    /// to (empty unless the leader appointed it a relay).
    pub fn relay_group(&self) -> &[ServerId] {
        &self.relay_group
    }

    /// Current phase, for observability.
    pub fn status(&self) -> FollowerStatus {
        match self.phase {
            Phase::Discovering => FollowerStatus::Discovering,
            Phase::Syncing { .. } => FollowerStatus::Syncing,
            Phase::Broadcasting => FollowerStatus::Active,
            Phase::Defunct => FollowerStatus::Defunct,
        }
    }

    /// Tail of the accepted history.
    pub fn last_zxid(&self) -> Zxid {
        self.history.last_zxid()
    }

    /// Highest committed zxid.
    pub fn last_committed(&self) -> Zxid {
        self.history.last_committed()
    }

    /// Snapshot of the durable protocol state (what a driver would write).
    pub fn persistent_state(&self) -> PersistentState {
        PersistentState {
            accepted_epoch: self.accepted_epoch,
            current_epoch: self.current_epoch,
            history: self.history.clone(),
        }
    }

    fn token(&mut self, purpose: Pending) -> PersistToken {
        self.next_token += 1;
        let t = PersistToken(self.next_token);
        self.pending.insert(t, purpose);
        t
    }

    fn abdicate(&mut self, reason: &'static str, out: &mut Vec<Action>) {
        self.phase = Phase::Defunct;
        self.pending.clear();
        out.push(Action::GoToElection { reason });
    }

    /// Feeds one input to the automaton, returning the actions the driver
    /// must perform. After `GoToElection` is emitted, all further inputs
    /// return no actions.
    pub fn handle(&mut self, input: Input) -> Vec<Action> {
        let mut out = Vec::new();
        if self.phase == Phase::Defunct {
            return out;
        }
        match input {
            Input::Tick { now_ms } => self.on_tick(now_ms, &mut out),
            Input::Message { from, msg } => {
                if from != self.leader {
                    // A follower converses only with its leader — except
                    // for relayed broadcast frames, which arrive from a
                    // relay peer. Relayed traffic never counts as leader
                    // contact (failure detection rides the direct pings)
                    // and is never fatal. Everything else is dropped.
                    if let Message::Forward { inner } = msg {
                        self.on_forward(inner, false, &mut out);
                    }
                    return out;
                }
                self.last_leader_contact_ms = self.now_ms;
                self.on_leader_message(msg, &mut out);
            }
            Input::Persisted { token } => self.on_persisted(token, &mut out),
            Input::ClientRequest { data } => {
                out.push(Action::ClientRequestRejected { data, reason: RejectReason::NotPrimary });
            }
            Input::SnapshotReady { .. } => {
                // Followers never request snapshots; ignore.
            }
            Input::PeerDisconnected { peer } => {
                if peer == self.leader {
                    self.abdicate("leader connection lost", &mut out);
                }
            }
            Input::Compact { through, .. } => {
                let point = through.min(self.delivered_to);
                if point > self.history.base() {
                    self.history.purge_through(point);
                }
            }
        }
        out
    }

    fn on_tick(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        self.now_ms = now_ms;
        if now_ms.saturating_sub(self.last_leader_contact_ms) > self.config.follower_timeout_ms {
            self.abdicate("leader timeout", out);
        }
    }

    fn on_leader_message(&mut self, msg: Message, out: &mut Vec<Action>) {
        match msg {
            Message::NewEpoch { epoch } => self.on_new_epoch(epoch, out),
            Message::SyncDiff { txns } => {
                self.on_sync_txns(txns, out);
                self.ack_sync_chunk(out);
            }
            Message::SyncTrunc { truncate_to, txns } => {
                self.on_sync_trunc(truncate_to, txns, out);
                self.ack_sync_chunk(out);
            }
            Message::SyncSnap { snapshot, snapshot_zxid, txns } => {
                self.on_sync_snap(snapshot, snapshot_zxid, txns, out);
                self.ack_sync_chunk(out);
            }
            Message::NewLeader { epoch } => self.on_new_leader(epoch, out),
            Message::UpToDate { commit_to } => self.on_up_to_date(commit_to, out),
            Message::Propose { txn, commit_up_to } => self.on_propose(txn, commit_up_to, out),
            Message::Commit { zxid } => self.on_commit(zxid, out),
            Message::Forward { inner } => self.on_forward(inner, true, out),
            Message::RelayAssign { members } => self.on_relay_assign(members),
            Message::Ping { last_committed } => {
                if self.phase == Phase::Broadcasting {
                    self.advance_watermark(last_committed, out);
                }
                out.push(Action::Send {
                    to: self.leader,
                    msg: Message::Pong { last_zxid: self.history.last_zxid() },
                });
            }
            // Messages a follower never receives from a correct leader.
            Message::FollowerInfo { .. }
            | Message::AckEpoch { .. }
            | Message::AckNewLeader { .. }
            | Message::Ack { .. }
            | Message::Pong { .. }
            | Message::SyncAck { .. } => {
                self.abdicate("unexpected message from leader", out);
            }
        }
    }

    fn on_new_epoch(&mut self, epoch: Epoch, out: &mut Vec<Action>) {
        if self.phase != Phase::Discovering {
            self.abdicate("NEWEPOCH outside discovery", out);
            return;
        }
        // Strict acceptance (paper, Phase 1 step f.1.1): acknowledging an
        // epoch at most once ever is what makes the epoch unique to one
        // prospective leader. Equal epochs are handled by the established
        // leader's fast path, which skips NEWEPOCH entirely.
        if epoch <= self.accepted_epoch {
            self.abdicate("stale or duplicate NEWEPOCH", out);
            return;
        }
        self.accepted_epoch = epoch;
        let token = self.token(Pending::AckEpoch);
        out.push(Action::Persist { token, req: PersistRequest::AcceptedEpoch(epoch) });
    }

    /// Common entry for sync-stream transactions (DIFF body, or the suffix
    /// carried by TRUNC/SNAP).
    fn on_sync_txns(&mut self, txns: Vec<Txn>, out: &mut Vec<Action>) {
        if !self.enter_sync(out) {
            return;
        }
        let mut appended = Vec::new();
        for txn in txns {
            let last = self.history.last_zxid();
            if txn.zxid <= last {
                // A retransmitted chunk (the leader repeats a transmission
                // whose ack got lost) overlaps what we already hold; the
                // opening TRUNC/SNAP aligned our prefix with the leader's,
                // so an already-held zxid is the same transaction.
                continue;
            }
            // A forward jump that is not the immediate successor means the
            // link swallowed part of the stream — appending would leave a
            // silent hole below the commit watermark we are about to adopt.
            if !txn.zxid.follows(last) {
                self.abdicate("sync stream leaves a gap", out);
                return;
            }
            self.history.append(txn.clone());
            appended.push(txn);
        }
        if appended.is_empty() {
            return;
        }
        let token = self.token_unpending();
        out.push(Action::Persist { token, req: PersistRequest::AppendTxns(appended) });
    }

    fn on_sync_trunc(&mut self, truncate_to: Zxid, txns: Vec<Txn>, out: &mut Vec<Action>) {
        if !self.enter_sync(out) {
            return;
        }
        if truncate_to < self.history.base() || truncate_to > self.history.last_zxid() {
            self.abdicate("TRUNC outside retained history", out);
            return;
        }
        if !self.history.contains_point(truncate_to) {
            // The leader assumed a common point we never had: our divergent
            // suffix from a dead epoch hides a hole (possible after
            // multiple interleaved leader failures). The suffix is
            // provably uncommitted, so discard it down to our greatest
            // point below the leader's, persist that, and rejoin — the
            // next discovery reports a zxid the leader does have, and the
            // sync becomes a plain DIFF.
            let fallback = self.history.last_point_at_or_below(truncate_to);
            if self.delivered_to > fallback {
                self.abdicate("TRUNC below delivery watermark", out);
                return;
            }
            self.history.truncate_to(fallback);
            let token = self.token_unpending();
            out.push(Action::Persist { token, req: PersistRequest::TruncateLog(fallback) });
            self.abdicate("TRUNC to unknown point; truncated and rejoining", out);
            return;
        }
        self.history.truncate_to(truncate_to);
        if self.delivered_to > truncate_to {
            // The leader asked us to discard transactions we already
            // delivered: they were committed at a quorum, so a correct
            // leader never does this. Treat as a fatal violation.
            self.abdicate("TRUNC below delivery watermark", out);
            return;
        }
        let token = self.token_unpending();
        out.push(Action::Persist { token, req: PersistRequest::TruncateLog(truncate_to) });
        self.on_sync_txns(txns, out);
    }

    fn on_sync_snap(
        &mut self,
        snapshot: bytes::Bytes,
        snapshot_zxid: Zxid,
        txns: Vec<Txn>,
        out: &mut Vec<Action>,
    ) {
        if !self.enter_sync(out) {
            return;
        }
        self.history.reset_to_snapshot(snapshot_zxid);
        self.delivered_to = snapshot_zxid;
        out.push(Action::InstallSnapshot { snapshot: snapshot.clone(), zxid: snapshot_zxid });
        let token = self.token_unpending();
        out.push(Action::Persist {
            token,
            req: PersistRequest::ResetToSnapshot { snapshot, zxid: snapshot_zxid },
        });
        self.on_sync_txns(txns, out);
    }

    /// Allocates a token with no completion side effect: used for sync
    /// writes whose durability is collectively awaited by the NEWLEADER
    /// adoption (ordered-durability contract: completing the adoption
    /// token implies these completed too).
    fn token_unpending(&mut self) -> PersistToken {
        self.next_token += 1;
        PersistToken(self.next_token)
    }

    /// Flow-control acknowledgement for one sync-stream chunk (paced
    /// catch-up, leader side gates the next chunk on it). Sent on
    /// receipt, not durability — pacing bounds the wire backlog, while
    /// durability of the whole stream is still gated by `ACKNEWLEADER`.
    /// Suppressed once `NEWLEADER` arrived (the stream is over) or after
    /// a violation ended the incarnation.
    fn ack_sync_chunk(&mut self, out: &mut Vec<Action>) {
        if self.phase == (Phase::Syncing { acked_new_leader: false }) {
            out.push(Action::Send {
                to: self.leader,
                msg: Message::SyncAck { last_zxid: self.history.last_zxid() },
            });
        }
    }

    /// Transitions Discovering → Syncing on the first sync message (the
    /// established leader's fast path skips NEWEPOCH). Returns false if the
    /// automaton is in the wrong phase (violation already reported).
    fn enter_sync(&mut self, out: &mut Vec<Action>) -> bool {
        match self.phase {
            Phase::Syncing { acked_new_leader: false } => true,
            Phase::Syncing { acked_new_leader: true } => {
                // The leader reopened our sync: it detected from our
                // ACKNEWLEADER that the previous stream was damaged in
                // transit, or it is renudging after a stalled stream.
                // Re-arm chunk acks and fold the new stream in (the
                // duplicate-NEWLEADER that follows re-acks harmlessly).
                self.phase = Phase::Syncing { acked_new_leader: false };
                true
            }
            Phase::Discovering => {
                self.phase = Phase::Syncing { acked_new_leader: false };
                true
            }
            _ => {
                self.abdicate("sync message outside synchronization", out);
                false
            }
        }
    }

    fn on_new_leader(&mut self, epoch: Epoch, out: &mut Vec<Action>) {
        if !self.enter_sync(out) {
            return;
        }
        // Ack NEWLEADER(e') only when acceptedEpoch == e' (paper, Phase 2):
        // either we acknowledged NEWEPOCH(e') this incarnation, or we are
        // rejoining the unique established leader of e'.
        if epoch != self.accepted_epoch {
            self.abdicate("NEWLEADER epoch mismatch", out);
            return;
        }
        if self.current_epoch > epoch {
            self.abdicate("NEWLEADER from older epoch than currentEpoch", out);
            return;
        }
        self.phase = Phase::Syncing { acked_new_leader: true };
        self.current_epoch = epoch;
        let token = self.token(Pending::AckNewLeader);
        out.push(Action::Persist { token, req: PersistRequest::CurrentEpoch(epoch) });
    }

    fn on_up_to_date(&mut self, commit_to: Zxid, out: &mut Vec<Action>) {
        if self.phase != (Phase::Syncing { acked_new_leader: true }) {
            self.abdicate("UPTODATE outside synchronization", out);
            return;
        }
        let capped = commit_to.min(self.history.last_zxid());
        if capped > self.history.last_committed() {
            self.history.mark_committed(capped);
        }
        self.phase = Phase::Broadcasting;
        deliver_committed(&self.history, &mut self.delivered_to, &self.metrics, &self.tracer, out);
        out.push(Action::Activated { epoch: self.current_epoch });
    }

    /// Advances the commit watermark to `watermark`, capped at the end of
    /// accepted history, and delivers the newly committed prefix.
    ///
    /// The cap is what keeps advisory watermarks (piggybacked on `PROPOSE`
    /// and carried by `PING`) safe: a watermark computed by the leader of
    /// epoch e orders strictly below every epoch-(e+1) zxid, and anything
    /// beyond our accepted history is clamped away — so a watermark can
    /// never commit a transaction the issuing leader did not know.
    fn advance_watermark(&mut self, watermark: Zxid, out: &mut Vec<Action>) {
        let capped = watermark.min(self.history.last_zxid());
        if capped > self.history.last_committed() {
            self.tracer.instant(Stage::WatermarkAdvance, capped.0, 0);
            self.history.mark_committed(capped);
            deliver_committed(
                &self.history,
                &mut self.delivered_to,
                &self.metrics,
                &self.tracer,
                out,
            );
        }
    }

    fn on_propose(&mut self, txn: Txn, commit_up_to: Zxid, out: &mut Vec<Action>) {
        if self.phase != Phase::Broadcasting {
            self.abdicate("PROPOSE outside broadcast phase", out);
            return;
        }
        if txn.zxid.epoch() != self.current_epoch {
            self.abdicate("PROPOSE from wrong epoch", out);
            return;
        }
        if txn.zxid <= self.history.last_zxid() {
            // Duplicate of a transaction already accepted — the leader
            // replays from its (possibly stale) view of our ack point
            // when it switches us between direct and relayed paths, so
            // overlap is expected. Skip the append and ack (the original
            // ack is in flight or already arrived), but the piggybacked
            // watermark still carries fresh information.
            self.advance_watermark(commit_up_to, out);
            return;
        }
        if !txn.zxid.follows(self.history.last_zxid()) {
            self.abdicate("gap in proposal stream", out);
            return;
        }
        self.history.append(txn.clone());
        let token = self.token(Pending::AckProposal(txn.zxid));
        out.push(Action::Persist { token, req: PersistRequest::AppendTxns(vec![txn]) });
        // The piggybacked watermark replaces the separate COMMIT frame on
        // a busy pipeline. Only applied once the proposal itself passed
        // the epoch and FIFO-gap checks above, so a frame from a deposed
        // leader can never move the watermark.
        self.advance_watermark(commit_up_to, out);
    }

    fn on_commit(&mut self, zxid: Zxid, out: &mut Vec<Action>) {
        if self.phase != Phase::Broadcasting {
            self.abdicate("COMMIT outside broadcast phase", out);
            return;
        }
        // COMMIT(z) is a cumulative watermark: everything ≤ z commits.
        if zxid > self.history.last_zxid() {
            self.abdicate("COMMIT beyond accepted history", out);
            return;
        }
        if zxid > self.history.last_committed() {
            self.tracer.instant(Stage::WatermarkAdvance, zxid.0, 0);
            self.history.mark_committed(zxid);
            deliver_committed(
                &self.history,
                &mut self.delivered_to,
                &self.metrics,
                &self.tracer,
                out,
            );
        }
    }

    /// A relay-tree broadcast frame: the origin message encoded verbatim,
    /// wrapped so it can hop leader → relay → member without re-encoding.
    ///
    /// Forwarded traffic is *advisory*: it rides a path that reassignment
    /// can make stale (an old relay still draining its queue after we
    /// switched direct, a frame for an epoch we left), so no violation
    /// here is ever fatal — a bad frame is dropped and the direct stream,
    /// pings, and the leader's stall detector heal the rest. Contrast
    /// direct leader traffic, where the same violations abdicate.
    ///
    /// `from_leader` distinguishes relay duty from member consumption:
    /// only frames received *directly from the leader* fan out to
    /// `relay_group`, so dissemination depth is exactly two hops and a
    /// stale cross-assignment (A's group says B while B's says A) can
    /// never loop a frame.
    fn on_forward(&mut self, inner: Bytes, from_leader: bool, out: &mut Vec<Action>) {
        if self.phase != Phase::Broadcasting {
            return;
        }
        if from_leader && !self.relay_group.is_empty() {
            // Forward before processing locally: the group members see
            // the same refcounted bytes the leader encoded once, and the
            // driver ships them without a second serialization.
            let to: Vec<ServerId> =
                self.relay_group.iter().copied().filter(|&p| p != self.id).collect();
            match to.len() {
                0 => {}
                1 => out.push(Action::Send {
                    to: to[0],
                    msg: Message::Forward { inner: inner.clone() },
                }),
                _ => out
                    .push(Action::Broadcast { to, msg: Message::Forward { inner: inner.clone() } }),
            }
        }
        let Ok(msg) = Message::decode_bytes(inner) else {
            return; // malformed forwarded frame: drop, never abdicate
        };
        match msg {
            Message::Propose { txn, commit_up_to } => {
                self.on_relayed_propose(txn, commit_up_to, out)
            }
            // A relayed COMMIT is a plain watermark; the cap inside
            // `advance_watermark` already makes it safe at any value.
            Message::Commit { zxid } => self.advance_watermark(zxid, out),
            // Only broadcast-path traffic rides the relay tree; anything
            // else wrapped in a FORWARD is noise.
            _ => {}
        }
    }

    /// [`on_propose`](Self::on_propose) with every fatal branch softened
    /// to a silent drop — see [`on_forward`](Self::on_forward) for why
    /// relayed traffic must never abdicate. Acks still go directly to the
    /// leader, keeping the quorum path star-shaped.
    fn on_relayed_propose(&mut self, txn: Txn, commit_up_to: Zxid, out: &mut Vec<Action>) {
        if txn.zxid.epoch() != self.current_epoch {
            return;
        }
        if txn.zxid <= self.history.last_zxid() {
            self.advance_watermark(commit_up_to, out);
            return;
        }
        if !txn.zxid.follows(self.history.last_zxid()) {
            return;
        }
        self.history.append(txn.clone());
        let token = self.token(Pending::AckProposal(txn.zxid));
        out.push(Action::Persist { token, req: PersistRequest::AppendTxns(vec![txn]) });
        self.advance_watermark(commit_up_to, out);
    }

    /// The leader (re)assigned our relay group. Sent on the leader's own
    /// FIFO channel, so it orders exactly against the FORWARD frames it
    /// governs; an empty list demotes us back to a plain follower.
    fn on_relay_assign(&mut self, members: Vec<ServerId>) {
        if self.phase == Phase::Broadcasting {
            self.relay_group = members;
        }
        // Outside the broadcast phase the assignment is stale by
        // construction (the leader only appoints acked followers); ignore
        // rather than abdicate.
    }

    fn on_persisted(&mut self, token: PersistToken, out: &mut Vec<Action>) {
        // Ordered durability: token t completes everything ≤ t.
        let done: Vec<PersistToken> = self.pending.range(..=token).map(|(&t, _)| t).collect();
        let mut best_proposal: Option<Zxid> = None;
        for t in done {
            match self.pending.remove(&t).expect("token present") {
                Pending::AckEpoch => {
                    out.push(Action::Send {
                        to: self.leader,
                        msg: Message::AckEpoch {
                            current_epoch: self.current_epoch,
                            last_zxid: self.history.last_zxid(),
                        },
                    });
                }
                Pending::AckNewLeader => {
                    out.push(Action::Send {
                        to: self.leader,
                        msg: Message::AckNewLeader {
                            epoch: self.current_epoch,
                            last_zxid: self.history.last_zxid(),
                        },
                    });
                }
                Pending::AckProposal(zxid) => {
                    // Cumulative ack: one message covers the whole batch.
                    best_proposal = Some(best_proposal.map_or(zxid, |b| b.max(zxid)));
                }
            }
        }
        if let Some(zxid) = best_proposal {
            self.metrics.acks_sent.inc();
            out.push(Action::Send { to: self.leader, msg: Message::Ack { zxid } });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    const LEADER: ServerId = ServerId(1);
    const ME: ServerId = ServerId(2);

    fn cfg() -> ClusterConfig {
        ClusterConfig::majority([ServerId(1), ServerId(2), ServerId(3)])
    }

    fn fresh() -> (Follower, Vec<Action>) {
        Follower::new(ME, LEADER, cfg(), PersistentState::default(), Zxid::ZERO, 0)
    }

    fn msg(m: Message) -> Input {
        Input::Message { from: LEADER, msg: m }
    }

    fn txn(e: u32, c: u32) -> Txn {
        Txn::new(Zxid::new(Epoch(e), c), vec![1, 2, 3])
    }

    /// Drives persistence completions instantly, like a RAM disk.
    fn complete_persists(f: &mut Follower, actions: &[Action]) -> Vec<Action> {
        let mut out = Vec::new();
        for a in actions {
            if let Action::Persist { token, .. } = a {
                out.extend(f.handle(Input::Persisted { token: *token }));
            }
        }
        out
    }

    fn sends(actions: &[Action]) -> Vec<&Message> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// Runs a follower through discovery + an empty-diff sync.
    fn activated_follower() -> Follower {
        let (mut f, init) = fresh();
        assert!(matches!(sends(&init)[0], Message::FollowerInfo { .. }));
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(1) }));
        let a2 = complete_persists(&mut f, &a);
        assert!(matches!(sends(&a2)[0], Message::AckEpoch { .. }));
        let a = f.handle(msg(Message::SyncDiff { txns: vec![] }));
        // Every sync chunk is flow-control acked on receipt.
        assert_eq!(sends(&a), vec![&Message::SyncAck { last_zxid: Zxid::ZERO }]);
        let a = f.handle(msg(Message::NewLeader { epoch: Epoch(1) }));
        let a2 = complete_persists(&mut f, &a);
        assert!(matches!(sends(&a2)[0], Message::AckNewLeader { .. }));
        let a = f.handle(msg(Message::UpToDate { commit_to: Zxid::ZERO }));
        assert!(a.iter().any(|x| matches!(x, Action::Activated { .. })));
        assert_eq!(f.status(), FollowerStatus::Active);
        f
    }

    #[test]
    fn full_happy_path_to_active() {
        let f = activated_follower();
        assert_eq!(f.persistent_state().accepted_epoch, Epoch(1));
        assert_eq!(f.persistent_state().current_epoch, Epoch(1));
    }

    #[test]
    fn ack_epoch_only_after_persist() {
        let (mut f, _) = fresh();
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(1) }));
        // Persist requested, but no ACKEPOCH yet.
        assert!(matches!(a[0], Action::Persist { .. }));
        assert!(sends(&a).is_empty());
    }

    #[test]
    fn stale_new_epoch_defects_to_election() {
        let (mut f, _) = fresh();
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(1) }));
        complete_persists(&mut f, &a);
        // An equal (duplicate) epoch proposal is refused: at-most-once ack.
        let mut f2 = Follower::new(ME, LEADER, cfg(), f.persistent_state(), Zxid::ZERO, 0).0;
        let a = f2.handle(msg(Message::NewEpoch { epoch: Epoch(1) }));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        assert_eq!(f2.status(), FollowerStatus::Defunct);
    }

    #[test]
    fn proposal_persist_then_ack_then_commit_delivers() {
        let mut f = activated_follower();
        let t = txn(1, 1);
        let a = f.handle(msg(Message::Propose { txn: t.clone(), commit_up_to: Zxid::ZERO }));
        assert!(matches!(a[0], Action::Persist { .. }));
        let a2 = complete_persists(&mut f, &a);
        assert_eq!(sends(&a2), vec![&Message::Ack { zxid: t.zxid }]);
        let a3 = f.handle(msg(Message::Commit { zxid: t.zxid }));
        assert!(a3.iter().any(|x| matches!(x, Action::Deliver { txn } if txn.zxid == t.zxid)));
    }

    #[test]
    fn pipelined_proposals_ack_cumulatively() {
        let mut f = activated_follower();
        let mut persists = Vec::new();
        for c in 1..=3 {
            persists.extend(
                f.handle(msg(Message::Propose { txn: txn(1, c), commit_up_to: Zxid::ZERO })),
            );
        }
        // Group commit: driver acks only the last token.
        let last_token = persists
            .iter()
            .filter_map(|a| match a {
                Action::Persist { token, .. } => Some(*token),
                _ => None,
            })
            .max()
            .unwrap();
        let a = f.handle(Input::Persisted { token: last_token });
        assert_eq!(sends(&a), vec![&Message::Ack { zxid: Zxid::new(Epoch(1), 3) }]);
    }

    #[test]
    fn gap_in_proposal_stream_is_fatal() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Propose { txn: txn(1, 2), commit_up_to: Zxid::ZERO }));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn proposal_from_wrong_epoch_is_fatal() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Propose { txn: txn(9, 1), commit_up_to: Zxid::ZERO }));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn duplicate_propose_skips_append_but_advances_watermark() {
        let mut f = activated_follower();
        let t = txn(1, 1);
        let a = f.handle(msg(Message::Propose { txn: t.clone(), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        // A path-switch replay re-sends the same zxid, now carrying a
        // fresher watermark: no second append/ack, but it must deliver.
        let a = f.handle(msg(Message::Propose { txn: t.clone(), commit_up_to: t.zxid }));
        assert!(!a.iter().any(|x| matches!(x, Action::Persist { .. })));
        assert!(!a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        assert!(a.iter().any(|x| matches!(x, Action::Deliver { txn } if txn.zxid == t.zxid)));
        assert_eq!(f.last_zxid(), t.zxid);
    }

    /// Wraps a message in a FORWARD frame the way the leader does: the
    /// origin encoding, verbatim.
    fn fwd(m: &Message) -> Message {
        Message::Forward { inner: m.encode().into() }
    }

    #[test]
    fn forwarded_propose_delivers_and_acks_directly_to_leader() {
        let mut f = activated_follower();
        let t = txn(1, 1);
        let p = Message::Propose { txn: t.clone(), commit_up_to: Zxid::ZERO };
        // The frame arrives from a relay peer, not the leader.
        let a = f.handle(Input::Message { from: ServerId(3), msg: fwd(&p) });
        assert!(matches!(a[0], Action::Persist { .. }));
        let a2 = complete_persists(&mut f, &a);
        // The ack is a Send to the leader: the quorum path stays direct.
        assert!(a2.iter().any(|x| matches!(x, Action::Send { to, msg: Message::Ack { zxid } }
                if *to == LEADER && *zxid == t.zxid)));
    }

    #[test]
    fn relay_refans_leader_frames_to_its_group_verbatim() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::RelayAssign { members: vec![ServerId(4), ServerId(5)] }));
        assert!(a.is_empty());
        assert_eq!(f.relay_group(), &[ServerId(4), ServerId(5)]);
        let p = Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO };
        let wrapped = fwd(&p);
        let a = f.handle(msg(wrapped.clone()));
        // The same bytes go out to the group before local processing.
        let fanned = a
            .iter()
            .find_map(|x| match x {
                Action::Broadcast { to, msg } => Some((to, msg)),
                _ => None,
            })
            .expect("relay must re-forward");
        assert_eq!(fanned.0, &vec![ServerId(4), ServerId(5)]);
        assert_eq!(fanned.1, &wrapped);
        // ...and the relay also consumes the proposal itself.
        assert!(a.iter().any(|x| matches!(x, Action::Persist { .. })));
    }

    #[test]
    fn frames_from_relay_peers_are_not_reforwarded() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::RelayAssign { members: vec![ServerId(4)] }));
        assert!(a.is_empty());
        let p = Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO };
        // Stale cross-assignment: a frame from another relay. Consumed,
        // never re-forwarded — forwarding depth is one hop past the leader.
        let a = f.handle(Input::Message { from: ServerId(3), msg: fwd(&p) });
        assert!(!a.iter().any(|x| matches!(x, Action::Broadcast { .. })));
        assert!(a.iter().any(|x| matches!(x, Action::Persist { .. })));
    }

    #[test]
    fn empty_relay_assign_demotes_relay() {
        let mut f = activated_follower();
        f.handle(msg(Message::RelayAssign { members: vec![ServerId(4)] }));
        f.handle(msg(Message::RelayAssign { members: vec![] }));
        let p = Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO };
        let a = f.handle(msg(fwd(&p)));
        assert!(!a.iter().any(|x| matches!(x, Action::Broadcast { .. })));
    }

    #[test]
    fn bad_forwarded_traffic_is_never_fatal() {
        let mut f = activated_follower();
        let cases = vec![
            // Not even a decodable message.
            Message::Forward { inner: Bytes::from_static(&[0xff, 0x01, 0x02]) },
            // Wrong epoch: fatal on the direct path, a drop here.
            fwd(&Message::Propose { txn: txn(9, 1), commit_up_to: Zxid::ZERO }),
            // Gap: fatal on the direct path, a drop here.
            fwd(&Message::Propose { txn: txn(1, 7), commit_up_to: Zxid::ZERO }),
            // Non-broadcast traffic has no business in a FORWARD.
            fwd(&Message::Ping { last_committed: Zxid::ZERO }),
            fwd(&Message::NewEpoch { epoch: Epoch(9) }),
        ];
        for m in cases {
            let a = f.handle(Input::Message { from: ServerId(3), msg: m });
            assert!(!a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        }
        assert_eq!(f.status(), FollowerStatus::Active);
        assert_eq!(f.last_zxid(), Zxid::ZERO);
    }

    #[test]
    fn forwarded_duplicate_advances_watermark_without_reappend() {
        let mut f = activated_follower();
        let t = txn(1, 1);
        let a = f.handle(msg(Message::Propose { txn: t.clone(), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        let dup = fwd(&Message::Propose { txn: t.clone(), commit_up_to: t.zxid });
        let a = f.handle(Input::Message { from: ServerId(3), msg: dup });
        assert!(!a.iter().any(|x| matches!(x, Action::Persist { .. })));
        assert!(a.iter().any(|x| matches!(x, Action::Deliver { txn } if txn.zxid == t.zxid)));
    }

    #[test]
    fn forwarded_commit_is_a_clamped_watermark() {
        let mut f = activated_follower();
        let t = txn(1, 1);
        let a = f.handle(msg(Message::Propose { txn: t.clone(), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        // Beyond accepted history: clamped, not fatal (direct COMMIT would
        // abdicate here).
        let a = f.handle(Input::Message {
            from: ServerId(3),
            msg: fwd(&Message::Commit { zxid: Zxid::new(Epoch(1), 9) }),
        });
        assert!(!a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        assert!(a.iter().any(|x| matches!(x, Action::Deliver { txn } if txn.zxid == t.zxid)));
    }

    #[test]
    fn relay_assign_outside_broadcast_is_ignored() {
        let (mut f, _) = fresh();
        let a = f.handle(msg(Message::RelayAssign { members: vec![ServerId(4)] }));
        assert!(!a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        assert!(f.relay_group().is_empty());
        // Forwarded frames before activation are dropped too.
        let p = Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO };
        let a = f.handle(Input::Message { from: ServerId(3), msg: fwd(&p) });
        assert!(a.is_empty());
    }

    #[test]
    fn commit_watermark_delivers_in_order() {
        let mut f = activated_follower();
        for c in 1..=3 {
            let a = f.handle(msg(Message::Propose { txn: txn(1, c), commit_up_to: Zxid::ZERO }));
            complete_persists(&mut f, &a);
        }
        let a = f.handle(msg(Message::Commit { zxid: Zxid::new(Epoch(1), 3) }));
        let delivered: Vec<Zxid> = a
            .iter()
            .filter_map(|x| match x {
                Action::Deliver { txn } => Some(txn.zxid),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, (1..=3).map(|c| Zxid::new(Epoch(1), c)).collect::<Vec<_>>());
    }

    #[test]
    fn commit_beyond_history_is_fatal() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Commit { zxid: Zxid::new(Epoch(1), 5) }));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn leader_timeout_triggers_election() {
        let mut f = activated_follower();
        let a = f.handle(Input::Tick { now_ms: 10_000 });
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { reason: "leader timeout" })));
    }

    #[test]
    fn ping_keeps_the_incarnation_alive_and_advances_commits() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        // Ping at t=300 with an advanced watermark.
        f.handle(Input::Tick { now_ms: 300 });
        let a = f.handle(msg(Message::Ping { last_committed: Zxid::new(Epoch(1), 1) }));
        assert!(a.iter().any(|x| matches!(x, Action::Deliver { .. })));
        assert!(a.iter().any(|x| matches!(x, Action::Send { msg: Message::Pong { .. }, .. })));
        // Timeout measured from last contact, not from start.
        let a = f.handle(Input::Tick { now_ms: 600 });
        assert!(!a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn leader_disconnect_triggers_election() {
        let mut f = activated_follower();
        let a = f.handle(Input::PeerDisconnected { peer: LEADER });
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn other_peer_disconnect_is_ignored() {
        let mut f = activated_follower();
        let a = f.handle(Input::PeerDisconnected { peer: ServerId(3) });
        assert!(a.is_empty());
    }

    #[test]
    fn messages_from_non_leader_are_dropped() {
        let mut f = activated_follower();
        let a = f.handle(Input::Message {
            from: ServerId(9),
            msg: Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO },
        });
        assert!(a.is_empty());
        assert_eq!(f.status(), FollowerStatus::Active);
    }

    #[test]
    fn client_requests_rejected_not_primary() {
        let mut f = activated_follower();
        let a = f.handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
        assert!(matches!(
            a[0],
            Action::ClientRequestRejected { reason: RejectReason::NotPrimary, .. }
        ));
    }

    #[test]
    fn trunc_sync_discards_divergent_suffix() {
        // Follower recovered with txns (1,1) (1,2); the new leader has
        // (1,1) (2,1): truncate to (1,1) then diff (2,1).
        let mut h = History::new();
        h.append(txn(1, 1));
        h.append(txn(1, 2));
        let state =
            PersistentState { accepted_epoch: Epoch(1), current_epoch: Epoch(1), history: h };
        let (mut f, _) = Follower::new(ME, LEADER, cfg(), state, Zxid::ZERO, 0);
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(2) }));
        complete_persists(&mut f, &a);
        let a = f.handle(msg(Message::SyncTrunc {
            truncate_to: Zxid::new(Epoch(1), 1),
            txns: vec![txn(2, 1)],
        }));
        // Persist actions: truncate then append.
        let reqs: Vec<_> = a
            .iter()
            .filter_map(|x| match x {
                Action::Persist { req, .. } => Some(req.clone()),
                _ => None,
            })
            .collect();
        assert!(matches!(reqs[0], PersistRequest::TruncateLog(z) if z == Zxid::new(Epoch(1), 1)));
        assert!(matches!(&reqs[1], PersistRequest::AppendTxns(v) if v.len() == 1));
        assert_eq!(f.last_zxid(), Zxid::new(Epoch(2), 1));
        let a = f.handle(msg(Message::NewLeader { epoch: Epoch(2) }));
        let a2 = complete_persists(&mut f, &a);
        match sends(&a2)[0] {
            Message::AckNewLeader { epoch, last_zxid } => {
                assert_eq!(*epoch, Epoch(2));
                assert_eq!(*last_zxid, Zxid::new(Epoch(2), 1));
            }
            m => panic!("expected ACKNEWLEADER, got {}", m.kind()),
        }
    }

    #[test]
    fn snap_sync_installs_snapshot_and_resets_history() {
        let (mut f, _) = fresh();
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(3) }));
        complete_persists(&mut f, &a);
        let snap_zxid = Zxid::new(Epoch(2), 100);
        let a = f.handle(msg(Message::SyncSnap {
            snapshot: Bytes::from_static(b"state"),
            snapshot_zxid: snap_zxid,
            txns: vec![txn(2, 101)],
        }));
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::InstallSnapshot { zxid, .. } if *zxid == snap_zxid)));
        assert_eq!(f.last_zxid(), Zxid::new(Epoch(2), 101));
        let a = f.handle(msg(Message::NewLeader { epoch: Epoch(3) }));
        complete_persists(&mut f, &a);
        let a = f.handle(msg(Message::UpToDate { commit_to: Zxid::new(Epoch(2), 101) }));
        // Only the post-snapshot txn is delivered; snapshot covered the rest.
        let delivered: Vec<Zxid> = a
            .iter()
            .filter_map(|x| match x {
                Action::Deliver { txn } => Some(txn.zxid),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![Zxid::new(Epoch(2), 101)]);
    }

    #[test]
    fn fast_path_sync_without_new_epoch() {
        // Rejoining the established leader of our accepted epoch: the sync
        // stream arrives with no NEWEPOCH preamble.
        let state = PersistentState {
            accepted_epoch: Epoch(2),
            current_epoch: Epoch(2),
            history: History::new(),
        };
        let (mut f, _) = Follower::new(ME, LEADER, cfg(), state, Zxid::ZERO, 0);
        let a = f.handle(msg(Message::SyncDiff { txns: vec![txn(2, 1)] }));
        assert!(!a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
        let a = f.handle(msg(Message::NewLeader { epoch: Epoch(2) }));
        let a2 = complete_persists(&mut f, &a);
        assert!(matches!(sends(&a2)[0], Message::AckNewLeader { .. }));
    }

    #[test]
    fn new_leader_with_mismatched_epoch_is_fatal() {
        let (mut f, _) = fresh();
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(2) }));
        complete_persists(&mut f, &a);
        let a = f.handle(msg(Message::NewLeader { epoch: Epoch(3) }));
        assert!(a.iter().any(|x| matches!(x, Action::GoToElection { .. })));
    }

    #[test]
    fn defunct_follower_ignores_everything() {
        let mut f = activated_follower();
        f.handle(Input::PeerDisconnected { peer: LEADER });
        let a = f.handle(msg(Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO }));
        assert!(a.is_empty());
    }

    #[test]
    fn trunc_to_unknown_point_truncates_and_rejoins() {
        // Follower has (1,1) then divergent (3,1); leader plans TRUNC to
        // (2,1), a point the follower never saw. The follower must drop
        // its divergent tail down to (1,1), persist, and go to election.
        let mut h = History::new();
        h.append(txn(1, 1));
        h.append(txn(3, 1));
        let state =
            PersistentState { accepted_epoch: Epoch(3), current_epoch: Epoch(3), history: h };
        let (mut f, _) = Follower::new(ME, LEADER, cfg(), state, Zxid::ZERO, 0);
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(4) }));
        complete_persists(&mut f, &a);
        let a =
            f.handle(msg(Message::SyncTrunc { truncate_to: Zxid::new(Epoch(2), 1), txns: vec![] }));
        assert!(a.iter().any(|x| matches!(
            x,
            Action::Persist { req: PersistRequest::TruncateLog(z), .. }
                if *z == Zxid::new(Epoch(1), 1)
        )));
        assert!(a.iter().any(|x| matches!(
            x,
            Action::GoToElection { reason } if reason.contains("unknown point")
        )));
        assert_eq!(f.last_zxid(), Zxid::new(Epoch(1), 1));
        // A fresh incarnation from this state reports (1,1) and syncs
        // cleanly via DIFF.
        let (f2, init) = Follower::new(ME, LEADER, cfg(), f.persistent_state(), Zxid::ZERO, 0);
        match &init[0] {
            Action::Send { msg: Message::FollowerInfo { last_zxid, .. }, .. } => {
                assert_eq!(*last_zxid, Zxid::new(Epoch(1), 1));
            }
            other => panic!("expected FOLLOWERINFO, got {other:?}"),
        }
        drop(f2);
    }

    #[test]
    fn commit_is_idempotent() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        let first = f.handle(msg(Message::Commit { zxid: Zxid::new(Epoch(1), 1) }));
        assert!(first.iter().any(|x| matches!(x, Action::Deliver { .. })));
        let second = f.handle(msg(Message::Commit { zxid: Zxid::new(Epoch(1), 1) }));
        assert!(!second.iter().any(|x| matches!(x, Action::Deliver { .. })));
    }

    fn delivered_zxids(actions: &[Action]) -> Vec<Zxid> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { txn } => Some(txn.zxid),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn piggybacked_watermark_delivers_prefix_without_commit_frame() {
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        // The next proposal carries the commit watermark for (1,1): the
        // prefix delivers with no standalone COMMIT frame ever arriving.
        let a = f
            .handle(msg(Message::Propose { txn: txn(1, 2), commit_up_to: Zxid::new(Epoch(1), 1) }));
        assert_eq!(delivered_zxids(&a), vec![Zxid::new(Epoch(1), 1)]);
        assert_eq!(f.last_committed(), Zxid::new(Epoch(1), 1));
    }

    #[test]
    fn watermark_beyond_local_history_is_clamped() {
        // An advisory watermark ahead of what we have accepted (possible
        // when the leader commits on a quorum that excludes us) clamps to
        // the end of local history instead of faulting — unlike an
        // explicit COMMIT, which is fatal beyond history.
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        let a = f
            .handle(msg(Message::Propose { txn: txn(1, 2), commit_up_to: Zxid::new(Epoch(1), 5) }));
        assert_eq!(delivered_zxids(&a), vec![Zxid::new(Epoch(1), 1), Zxid::new(Epoch(1), 2)]);
        assert_eq!(f.status(), FollowerStatus::Active);
        assert_eq!(f.last_committed(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    fn epoch_boundary_watermark_cannot_commit_next_epoch() {
        // A follower that crossed a failover with an uncommitted epoch-1
        // suffix: a watermark computed in epoch 1 must commit exactly that
        // suffix and nothing from epoch 2, even though epoch-2 proposals
        // are already accepted locally.
        let mut h = History::new();
        h.append(txn(1, 1));
        h.append(txn(1, 2));
        let state =
            PersistentState { accepted_epoch: Epoch(1), current_epoch: Epoch(1), history: h };
        let (mut f, _) = Follower::new(ME, LEADER, cfg(), state, Zxid::ZERO, 0);
        let a = f.handle(msg(Message::NewEpoch { epoch: Epoch(2) }));
        complete_persists(&mut f, &a);
        let _ = f.handle(msg(Message::SyncDiff { txns: vec![] }));
        let a = f.handle(msg(Message::NewLeader { epoch: Epoch(2) }));
        complete_persists(&mut f, &a);
        let _ = f.handle(msg(Message::UpToDate { commit_to: Zxid::ZERO }));
        assert_eq!(f.status(), FollowerStatus::Active);
        assert_eq!(f.last_committed(), Zxid::ZERO);
        // First epoch-2 proposal piggybacks the epoch-1 watermark: the
        // old-epoch suffix commits, the new proposal itself does not.
        let a = f
            .handle(msg(Message::Propose { txn: txn(2, 1), commit_up_to: Zxid::new(Epoch(1), 2) }));
        assert_eq!(delivered_zxids(&a), vec![Zxid::new(Epoch(1), 1), Zxid::new(Epoch(1), 2)]);
        assert_eq!(f.last_committed(), Zxid::new(Epoch(1), 2));
        // The epoch-2 entry commits only once an epoch-2 watermark covers it.
        let a = f
            .handle(msg(Message::Propose { txn: txn(2, 2), commit_up_to: Zxid::new(Epoch(2), 1) }));
        assert_eq!(delivered_zxids(&a), vec![Zxid::new(Epoch(2), 1)]);
    }

    #[test]
    fn wrong_epoch_propose_watermark_is_never_applied() {
        // A PROPOSE that fails the epoch check must not move the commit
        // watermark either: the deposed leader computed it from a history
        // this follower has moved past.
        let mut f = activated_follower();
        let a = f.handle(msg(Message::Propose { txn: txn(1, 1), commit_up_to: Zxid::ZERO }));
        complete_persists(&mut f, &a);
        let a = f
            .handle(msg(Message::Propose { txn: txn(9, 1), commit_up_to: Zxid::new(Epoch(1), 1) }));
        assert!(delivered_zxids(&a).is_empty());
        assert_eq!(f.status(), FollowerStatus::Defunct);
        assert_eq!(f.last_committed(), Zxid::ZERO);
    }
}
