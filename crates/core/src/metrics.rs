//! Protocol-layer metrics (DESIGN.md §9).
//!
//! [`CoreMetrics`] bundles the instruments both automata record into. A
//! standalone (unregistered) bundle is the default so the sans-io automata
//! stay dependency-light for tests; drivers that want the numbers surfaced
//! call [`CoreMetrics::registered`] against their [`zab_metrics::Registry`]
//! and inject it with `set_metrics`.
//!
//! The paper's evaluation quantities map directly:
//! - `core.proposals_proposed` / `core.proposals_committed`: broadcast
//!   throughput numerators.
//! - `core.quorum_ack_latency_ms`: propose → quorum-ack time (virtual ms
//!   in the simulator, wall ms on a real node).
//! - `core.outstanding_depth`: the "multiple outstanding transactions"
//!   knob, observed live.

use std::sync::Arc;
use zab_metrics::{Counter, Gauge, Histogram, Registry};

/// Instrument bundle recorded by [`crate::Leader`] and [`crate::Follower`].
#[derive(Debug, Clone)]
pub struct CoreMetrics {
    /// Proposals this leader incarnation has assigned zxids to.
    pub proposals_proposed: Arc<Counter>,
    /// ACK messages received from peers (leader side).
    pub acks_received: Arc<Counter>,
    /// Cumulative ACK messages sent to the leader (follower side).
    pub acks_sent: Arc<Counter>,
    /// Committed transactions delivered to the application. Every replica
    /// delivers the same committed stream, so this counter must agree
    /// across a healthy ensemble — the e2e and chaos tests assert exactly
    /// that.
    pub proposals_committed: Arc<Counter>,
    /// Propose → quorum-ack latency, in driver-clock milliseconds.
    pub quorum_ack_latency_ms: Arc<Histogram>,
    /// Proposals in flight (proposed, not yet committed).
    pub outstanding_depth: Arc<Gauge>,
    /// Payload bytes shipped in sync-stream messages (DIFF/TRUNC/SNAP
    /// chunks, including snapshot bytes), leader side.
    pub sync_bytes_sent: Arc<Counter>,
    /// Catch-up syncs served via full snapshot (SNAP).
    pub snap_syncs: Arc<Counter>,
    /// Catch-up syncs served via log replay (DIFF or TRUNC).
    pub diff_syncs: Arc<Counter>,
    /// Client requests the leader bounced with back-pressure
    /// (`RejectReason::Overloaded`): the pending queue was at
    /// [`crate::ClusterConfig::request_queue_limit`]. Shed, never queued —
    /// a growing counter under steady load means the admission window
    /// above is letting more in than the pipeline drains.
    pub requests_rejected: Arc<Counter>,
    /// Relay-tree parent changes (leader side): a follower switching
    /// between direct and relayed dissemination, or between relays.
    /// Spikes when relays crash (orphans re-parent to the leader) and on
    /// membership churn; a steady climb means the stall detector is
    /// flapping members between paths.
    pub relay_reassignments: Arc<Counter>,
}

impl CoreMetrics {
    /// Fresh instruments not attached to any registry: recording works,
    /// nothing is exported. The automata default to this.
    pub fn standalone() -> CoreMetrics {
        CoreMetrics {
            proposals_proposed: Arc::new(Counter::default()),
            acks_received: Arc::new(Counter::default()),
            acks_sent: Arc::new(Counter::default()),
            proposals_committed: Arc::new(Counter::default()),
            quorum_ack_latency_ms: Arc::new(Histogram::default()),
            outstanding_depth: Arc::new(Gauge::default()),
            sync_bytes_sent: Arc::new(Counter::default()),
            snap_syncs: Arc::new(Counter::default()),
            diff_syncs: Arc::new(Counter::default()),
            requests_rejected: Arc::new(Counter::default()),
            relay_reassignments: Arc::new(Counter::default()),
        }
    }

    /// Instruments registered under the `core.` namespace of `reg`, so
    /// they appear in the registry's snapshots and JSON dumps.
    pub fn registered(reg: &Registry) -> CoreMetrics {
        CoreMetrics {
            proposals_proposed: reg.counter("core.proposals_proposed"),
            acks_received: reg.counter("core.acks_received"),
            acks_sent: reg.counter("core.acks_sent"),
            proposals_committed: reg.counter("core.proposals_committed"),
            quorum_ack_latency_ms: reg.histogram("core.quorum_ack_latency_ms"),
            outstanding_depth: reg.gauge("core.outstanding_depth"),
            sync_bytes_sent: reg.counter("core.sync_bytes_sent"),
            snap_syncs: reg.counter("core.snap_syncs"),
            diff_syncs: reg.counter("core.diff_syncs"),
            requests_rejected: reg.counter("core.requests_rejected"),
            relay_reassignments: reg.counter("core.relay_reassignments"),
        }
    }
}

impl Default for CoreMetrics {
    fn default() -> CoreMetrics {
        CoreMetrics::standalone()
    }
}
