//! # zab-core — primary-order atomic broadcast (Zab, DSN 2011)
//!
//! A sans-io, deterministic implementation of **Zab**, the crash-recovery
//! atomic broadcast protocol behind ZooKeeper (Junqueira, Reed, Serafini:
//! *"Zab: High-performance broadcast for primary-backup systems"*, DSN'11).
//!
//! Zab lets a **primary** process execute operations and broadcast the
//! resulting *incremental state changes* to backups such that:
//!
//! - changes are delivered in a single total order at every process
//!   (**total order**, **agreement**),
//! - changes of one primary deliver in the order it generated them
//!   (**local primary order**),
//! - changes of an earlier primary never deliver after changes of a later
//!   one (**global primary order**),
//! - a new primary only starts broadcasting after every committed change of
//!   earlier primaries is delivered (**primary integrity**),
//!
//! all while allowing the primary to keep **many transactions outstanding**
//! (pipelined) — the combination that distinguishes Zab from running
//! operations through a plain consensus sequence.
//!
//! ## Architecture
//!
//! The protocol is expressed as two pure automata — [`Leader`] and
//! [`Follower`] — plus the [`Zab`] wrapper that holds whichever role the
//! last election produced. Automata consume [`Input`]s and emit
//! [`Action`]s; a *driver* (the deterministic simulator in `zab-simnet`,
//! the TCP node in `zab-node`, or a test) performs the actual I/O. See
//! [`events`] for the driver contract.
//!
//! Leader election (Phase 0) is *not* in this crate: any oracle that
//! eventually nominates a single live process works. ZooKeeper's Fast
//! Leader Election lives in the `zab-election` crate.
//!
//! ## Quick example (one automaton, hand-driven)
//!
//! ```
//! use zab_core::{
//!     ClusterConfig, Input, Leader, PersistentState, ServerId, Zxid,
//! };
//!
//! // A 1-server ensemble establishes immediately; drive its persists.
//! let cfg = ClusterConfig::majority([ServerId(1)]);
//! let (mut leader, actions) =
//!     Leader::new(ServerId(1), cfg, PersistentState::default(), Zxid::ZERO, 0);
//! let mut pending = actions;
//! while let Some(action) = pending.pop() {
//!     if let zab_core::Action::Persist { token, .. } = action {
//!         pending.extend(leader.handle(Input::Persisted { token }));
//!     }
//! }
//! assert!(leader.is_established());
//! ```

pub mod config;
pub mod delivery;
pub mod events;
pub mod follower;
pub mod history;
pub mod leader;
pub mod messages;
pub mod metrics;
pub mod types;

pub use config::{ClusterConfig, MajorityQuorum, QuorumSystem, Topology, WeightedQuorum};
pub use delivery::{DeliveryHash, HashCheckpoint};
pub use events::{Action, Input, PersistRequest, PersistToken, PersistentState, RejectReason};
pub use follower::{Follower, FollowerStatus};
pub use history::{History, SyncPlan};
pub use leader::{FollowerLag, Leader, LeaderStatus, SyncProgress};
pub use messages::Message;
pub use metrics::CoreMetrics;
pub use types::{Epoch, ServerId, Txn, Zxid};

/// The role a process plays after an election, wrapping the corresponding
/// automaton. Drivers construct one per election outcome and feed it
/// [`Input`]s until it emits [`Action::GoToElection`].
// One automaton exists per process, never in collections, so the
// Leader/Follower size gap is irrelevant and boxing would only add an
// indirection to every input.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Zab {
    /// This process was nominated leader.
    Leader(Leader),
    /// This process follows `Follower::leader()`.
    Follower(Follower),
}

impl Zab {
    /// Builds the automaton for an election outcome: leader if `me ==
    /// nominee`, follower bound to the nominee otherwise. Returns the
    /// automaton plus its initial actions.
    pub fn from_election(
        me: ServerId,
        nominee: ServerId,
        config: ClusterConfig,
        state: PersistentState,
        applied_to: Zxid,
        now_ms: u64,
    ) -> (Zab, Vec<Action>) {
        if me == nominee {
            let (l, a) = Leader::new(me, config, state, applied_to, now_ms);
            (Zab::Leader(l), a)
        } else {
            let (f, a) = Follower::new(me, nominee, config, state, applied_to, now_ms);
            (Zab::Follower(f), a)
        }
    }

    /// Feeds one input to the wrapped automaton.
    pub fn handle(&mut self, input: Input) -> Vec<Action> {
        match self {
            Zab::Leader(l) => l.handle(input),
            Zab::Follower(f) => f.handle(input),
        }
    }

    /// Injects the instrument bundle the automaton records into (replacing
    /// the default standalone instruments). Call right after construction,
    /// before driving inputs.
    pub fn set_metrics(&mut self, metrics: CoreMetrics) {
        match self {
            Zab::Leader(l) => l.set_metrics(metrics),
            Zab::Follower(f) => f.set_metrics(metrics),
        }
    }

    /// Injects the flight-recorder handle the automaton records lifecycle
    /// events into (see `zab-trace`). Call right after construction,
    /// before driving inputs.
    pub fn set_tracer(&mut self, tracer: zab_trace::Tracer) {
        match self {
            Zab::Leader(l) => l.set_tracer(tracer),
            Zab::Follower(f) => f.set_tracer(tracer),
        }
    }

    /// This process's server id.
    pub fn id(&self) -> ServerId {
        match self {
            Zab::Leader(l) => l.id(),
            Zab::Follower(f) => f.id(),
        }
    }

    /// True if this process is an established primary.
    pub fn is_established_leader(&self) -> bool {
        matches!(self, Zab::Leader(l) if l.is_established())
    }

    /// True if this process is an activated (synced) follower.
    pub fn is_active_follower(&self) -> bool {
        matches!(self, Zab::Follower(f) if f.status() == FollowerStatus::Active)
    }

    /// Tail of the accepted history.
    pub fn last_zxid(&self) -> Zxid {
        match self {
            Zab::Leader(l) => l.last_zxid(),
            Zab::Follower(f) => f.last_zxid(),
        }
    }

    /// Highest committed zxid.
    pub fn last_committed(&self) -> Zxid {
        match self {
            Zab::Leader(l) => l.last_committed(),
            Zab::Follower(f) => f.last_committed(),
        }
    }

    /// Snapshot of the durable protocol state.
    pub fn persistent_state(&self) -> PersistentState {
        match self {
            Zab::Leader(l) => l.persistent_state(),
            Zab::Follower(f) => f.persistent_state(),
        }
    }

    /// Peers this process is currently catch-up syncing (leaders only;
    /// followers always report none).
    pub fn syncing_peers(&self) -> Vec<SyncProgress> {
        match self {
            Zab::Leader(l) => l.syncing_peers(),
            Zab::Follower(_) => Vec::new(),
        }
    }

    /// Per-follower replication lag against the committed frontier
    /// (leaders only; followers always report none). See
    /// [`Leader::follower_lags`].
    pub fn follower_lags(&self) -> Vec<FollowerLag> {
        match self {
            Zab::Leader(l) => l.follower_lags(),
            Zab::Follower(_) => Vec::new(),
        }
    }

    /// The relay dissemination tree as `(relay, members)` pairs: the full
    /// plan on a leader, this process's own group on a relaying follower.
    /// Empty under star topology (or when no plan is active).
    pub fn relay_topology(&self) -> Vec<(ServerId, Vec<ServerId>)> {
        match self {
            Zab::Leader(l) => l.relay_topology(),
            Zab::Follower(f) => {
                let group = f.relay_group();
                if group.is_empty() {
                    Vec::new()
                } else {
                    vec![(f.id(), group.to_vec())]
                }
            }
        }
    }
}
