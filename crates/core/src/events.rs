//! The sans-io boundary: inputs a driver feeds to an automaton and actions
//! the automaton asks the driver to perform.
//!
//! The core protocol automata ([`crate::Leader`], [`crate::Follower`]) are
//! pure state machines: they never touch sockets, disks, clocks or threads.
//! A *driver* (the deterministic simulator, the TCP node, or a unit test)
//! owns those resources and mediates:
//!
//! ```text
//!             Input ───────────────►┌───────────┐
//!   driver                          │ automaton │
//!             ◄─────────── Vec<Action>└──────────┘
//! ```
//!
//! ## Driver contract
//!
//! 1. **FIFO channels.** Messages between two processes are delivered in
//!    order or the connection is reported broken via
//!    [`Input::PeerDisconnected`] (Zab's channel assumption).
//! 2. **Ordered durability.** [`Action::Persist`] requests must be applied
//!    to stable storage in emission order; [`Input::Persisted`] for a token
//!    implies every earlier token is durable too (group commit is
//!    explicitly allowed — ack only the latest token of a batch).
//! 3. **Time.** The driver feeds [`Input::Tick`] with a monotone
//!    millisecond clock at least every few milliseconds of protocol time;
//!    all timeouts derive from it.
//! 4. **Delivery.** [`Action::Deliver`] hands committed transactions to the
//!    application in zxid order, exactly once per automaton incarnation.

use crate::types::{Epoch, ServerId, Txn, Zxid};
use bytes::Bytes;

/// Token correlating a durability request with its completion.
///
/// Tokens are issued in strictly increasing order per automaton; completing
/// token *t* acknowledges every request with token ≤ *t*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PersistToken(pub u64);

/// What the driver must make durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistRequest {
    /// Store the follower/leader `acceptedEpoch` variable (`f.p`).
    AcceptedEpoch(Epoch),
    /// Store the `currentEpoch` variable (`f.a`).
    CurrentEpoch(Epoch),
    /// Append transactions to the log, in order.
    AppendTxns(Vec<Txn>),
    /// Discard log entries with zxid greater than this point.
    TruncateLog(Zxid),
    /// Replace log and state with a snapshot covering up to `zxid`.
    ResetToSnapshot {
        /// Opaque application snapshot bytes.
        snapshot: Bytes,
        /// Zxid the snapshot covers (inclusive).
        zxid: Zxid,
    },
}

/// Everything a Zab automaton can receive from its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// A protocol message arrived from a peer.
    Message {
        /// Sending server.
        from: ServerId,
        /// The message.
        msg: crate::messages::Message,
    },
    /// Monotone clock advance (milliseconds since an arbitrary origin).
    Tick {
        /// Current driver time.
        now_ms: u64,
    },
    /// A client submitted an operation for broadcast. Only meaningful on
    /// the primary; elsewhere it is rejected via
    /// [`Action::ClientRequestRejected`].
    ClientRequest {
        /// Opaque incremental state change produced by the primary.
        data: Bytes,
    },
    /// Durability completion for `token` and everything before it.
    Persisted {
        /// Highest durable token.
        token: PersistToken,
    },
    /// The application produced the snapshot requested by
    /// [`Action::TakeSnapshot`].
    SnapshotReady {
        /// Snapshot bytes.
        snapshot: Bytes,
        /// Zxid the snapshot covers (the delivery point at capture).
        zxid: Zxid,
    },
    /// The transport lost the connection to `peer` (FIFO channel broken).
    PeerDisconnected {
        /// The disconnected peer.
        peer: ServerId,
    },
    /// The driver compacted its durable log into a snapshot covering up to
    /// `through` (ZooKeeper's periodic snapshotting): the automaton drops
    /// the matching in-memory prefix. Only delivered transactions are
    /// purged; followers lagging past the compaction point will be synced
    /// with SNAP.
    Compact {
        /// Compaction point (clamped to the delivered watermark).
        through: Zxid,
        /// The application snapshot the driver compacted into, if it has
        /// one. A leader retains it so a follower lagging behind the
        /// compaction horizon can be served SNAP directly, without a
        /// fresh `TakeSnapshot` round trip to the application.
        snapshot: Option<Bytes>,
    },
}

/// Why a client request was not accepted for broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// This process is not an established primary.
    NotPrimary,
    /// The pending-request queue is full (back-pressure).
    Overloaded,
}

/// Everything a Zab automaton can ask of its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send `msg` to `to` over the FIFO channel.
    Send {
        /// Destination server.
        to: ServerId,
        /// The message.
        msg: crate::messages::Message,
    },
    /// Send the *same* `msg` to every server in `to` — the leader's
    /// fan-out. Drivers should encode the message once and hand each
    /// channel a shared handle; semantically this is exactly a
    /// [`Action::Send`] per target, in `to`'s order.
    Broadcast {
        /// Destination servers (never includes this server).
        to: Vec<ServerId>,
        /// The message.
        msg: crate::messages::Message,
    },
    /// Make `req` durable, then feed back [`Input::Persisted`].
    Persist {
        /// Completion token.
        token: PersistToken,
        /// The durability request.
        req: PersistRequest,
    },
    /// Apply a committed transaction to the application, in zxid order.
    Deliver {
        /// The committed transaction.
        txn: Txn,
    },
    /// Replace the application state with a received snapshot before any
    /// further `Deliver`.
    InstallSnapshot {
        /// Snapshot bytes.
        snapshot: Bytes,
        /// Zxid the snapshot covers.
        zxid: Zxid,
    },
    /// Ask the application for a snapshot of its current state; reply with
    /// [`Input::SnapshotReady`]. Used by leaders serving SNAP syncs.
    TakeSnapshot,
    /// This automaton's incarnation is over; the process must run leader
    /// election again and build a fresh automaton.
    GoToElection {
        /// Human-readable cause, for logs and tests.
        reason: &'static str,
    },
    /// The process became an established primary (leader) or an active
    /// synced follower for `epoch`. Informational.
    Activated {
        /// The established epoch.
        epoch: Epoch,
    },
    /// A client request was not accepted.
    ClientRequestRejected {
        /// The rejected payload, returned to the caller.
        data: Bytes,
        /// Why.
        reason: RejectReason,
    },
    /// A transaction the automaton broadcast (or adopted) is now known
    /// committed. Emitted by the leader for observability/latency
    /// accounting; `Deliver` follows separately.
    Committed {
        /// Zxid of the committed transaction.
        zxid: Zxid,
    },
}

/// Durable protocol state handed to a new automaton incarnation after
/// recovery (the paper's persistent variables).
#[derive(Debug, Clone, Default)]
pub struct PersistentState {
    /// `f.p`: last epoch for which this process acknowledged `NEWEPOCH`.
    pub accepted_epoch: Epoch,
    /// `f.a`: last epoch for which this process acknowledged `NEWLEADER`.
    pub current_epoch: Epoch,
    /// The accepted transaction history recovered from the log.
    pub history: crate::history::History,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_tokens_are_ordered() {
        assert!(PersistToken(1) < PersistToken(2));
    }

    #[test]
    fn default_persistent_state_is_pristine() {
        let s = PersistentState::default();
        assert_eq!(s.accepted_epoch, Epoch::ZERO);
        assert_eq!(s.current_epoch, Epoch::ZERO);
        assert_eq!(s.history.last_zxid(), Zxid::ZERO);
    }
}
