//! # zab-transport — TCP mesh for Zab replicas
//!
//! Zab assumes FIFO channels that either deliver intact, in-order bytes or
//! break visibly — exactly TCP's contract. This crate provides that
//! substrate for real deployments:
//!
//! - every node keeps **one outgoing connection per peer**, used only for
//!   its own sends (so each direction is an independent FIFO channel and
//!   no connection-dueling logic is needed),
//! - connections carry an 8-byte handshake (the sender's [`ServerId`])
//!   followed by checksummed frames ([`zab_wire::frame`]), each framing a
//!   1-byte channel tag (Zab protocol vs. leader election) plus the
//!   encoded message,
//! - a broken connection surfaces as [`TransportEvent::PeerDisconnected`]
//!   and queued unsent messages are *dropped* — the protocol automata
//!   treat a channel break as fatal to the session and resynchronize, so
//!   delivering stale traffic on a fresh connection would be wrong; every
//!   such drop (and every send to an unknown or unreachable peer) ticks
//!   the `transport.send_dropped` counter,
//! - outgoing connections retry with **capped exponential backoff plus
//!   deterministic jitter** (seeded from the `(me, peer)` pair, so retry
//!   timing replays in tests and peers don't thundering-herd a rebooted
//!   node), and every failed dial surfaces as
//!   [`TransportEvent::ConnectFailed`] rather than vanishing.
//!
//! ## Architecture: inline sends, one readiness loop
//!
//! Sends run on the **caller's** thread: [`Transport::send`] and
//! [`Transport::broadcast`] encode the message once into a refcounted
//! [`Frame`](conn::Frame) (payload bytes *and* checksum computed exactly
//! once, shared across every target peer), take the peer's write lock,
//! and flush straight into the nonblocking socket — one vectored write
//! covering up to 64 frames / 256 KiB per syscall, resuming partial
//! writes from a cursor ([`conn::WriteBuf`]). The hot path costs no
//! cross-thread handoff and no wakeup.
//!
//! Callers with batchy traffic — the replica event loop above all — use
//! the corked forms: [`Transport::queue`] / [`Transport::queue_broadcast`]
//! append frames without flushing, and one [`Transport::flush`] at the
//! caller's batch boundary writes each peer's accumulated burst in a
//! single vectored syscall. This recovers, deliberately and at an
//! explicit boundary, the write amortization the old design got as a
//! side effect of its per-peer writer threads falling behind.
//!
//! Everything asynchronous — accepting, reading inbound frames, dialing
//! with backoff, and draining a socket that went `WouldBlock` under a
//! sender — belongs to **a single I/O thread per node**: an event-driven
//! readiness loop ([`wire_loop`]) over nonblocking sockets and `poll(2)`
//! ([`poller`]). A choked sender pokes the loop's waker; the loop arms
//! `POLLOUT` and finishes the job as readiness arrives.
//!
//! The payoff is flat ensemble scaling: where the old design spent
//! 2(N−1)+1 threads per node (and a kernel wakeup per peer per message),
//! a 9-node mesh now costs each node one I/O thread and a pollfd set,
//! and a leader PROPOSE is one encode plus N−1 iovec references.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use zab_core::{Message, ServerId};
use zab_election::Notification;
use zab_metrics::{Counter, Registry};
use zab_trace::{Stage, Tracer};

mod backoff;
mod conn;
mod poller;
mod wire_loop;

use conn::Frame;
use poller::Waker;
use wire_loop::{Offer, Outbound, WireLoop};

/// A message on the mesh: protocol or election traffic.
#[derive(Debug, Clone)]
pub enum TransportMsg {
    /// Zab protocol message.
    Zab(Message),
    /// Fast-leader-election notification.
    Election(Notification),
}

impl TransportMsg {
    /// Encodes channel tag + message into one buffer, returned as
    /// refcounted [`Bytes`]: fanning the same message out to several peers
    /// clones the handle, never the encoded bytes.
    fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(16);
        match self {
            TransportMsg::Zab(m) => {
                buf.push(0u8);
                m.encode_into(&mut buf);
            }
            TransportMsg::Election(n) => {
                buf.push(1u8);
                buf.extend(n.encode());
            }
        }
        Bytes::from(buf)
    }

    /// The zxid to attribute this message to in the flight recorder.
    /// Only the broadcast-path messages (PROPOSE/ACK/COMMIT) are traced;
    /// heartbeats, election traffic, and sync streams would drown the
    /// per-transaction timelines in noise.
    pub(crate) fn traced_zxid(&self) -> Option<u64> {
        match self {
            TransportMsg::Zab(Message::Propose { txn, .. }) => Some(txn.zxid.0),
            TransportMsg::Zab(Message::Ack { zxid })
            | TransportMsg::Zab(Message::Commit { zxid }) => Some(zxid.0),
            _ => None,
        }
    }

    /// Decodes a channel-tagged frame payload. Zab transaction payloads
    /// come back as zero-copy views of `data`.
    pub(crate) fn decode(data: Bytes) -> Option<TransportMsg> {
        let &tag = data.first()?;
        let rest = data.slice(1..);
        match tag {
            0 => Message::decode_bytes(rest).ok().map(TransportMsg::Zab),
            1 => Notification::decode(&rest).ok().map(TransportMsg::Election),
            _ => None,
        }
    }
}

/// Events surfaced to the replica's event loop.
#[derive(Debug, Clone)]
pub enum TransportEvent {
    /// A message arrived from `from`.
    Message {
        /// Sending server.
        from: ServerId,
        /// The message.
        msg: TransportMsg,
    },
    /// The FIFO channel to/from `peer` broke (either direction).
    PeerDisconnected {
        /// The peer.
        peer: ServerId,
    },
    /// An outgoing dial to `peer` failed; the sender is backing off.
    /// Surfaced so operators see unreachable peers instead of silence.
    ConnectFailed {
        /// The peer.
        peer: ServerId,
        /// Consecutive failures so far (0 = first).
        attempt: u32,
        /// The dial error.
        error: String,
    },
}

/// The TCP mesh endpoint for one replica.
///
/// Create with [`Transport::start`]; send with [`Transport::send`]; drain
/// [`Transport::events`] from the replica's event loop. Dropping the
/// transport stops the I/O thread, joins it, and closes every socket —
/// after `drop` returns, no further event can be emitted.
pub struct Transport {
    id: ServerId,
    /// Every configured peer (self excluded), the default broadcast set.
    peers: Vec<ServerId>,
    /// Each peer's shared write half: senders flush inline through these.
    outs: BTreeMap<ServerId, Arc<Outbound>>,
    waker: Waker,
    events_rx: Receiver<TransportEvent>,
    stop: Arc<AtomicBool>,
    io_thread: Mutex<Option<JoinHandle<()>>>,
    local_addr: SocketAddr,
    /// Metrics registry shared with the wire loop
    /// (per-peer instruments under `transport.*.<peer>`).
    metrics: Arc<Registry>,
    /// Sends that went nowhere: unknown peer, or peer not connected.
    send_dropped: Arc<Counter>,
    /// Flight-recorder handle: wire-out/wire-in instants for broadcast
    /// traffic (disabled unless built via [`Transport::start_traced`]).
    tracer: Tracer,
}

impl Transport {
    /// Binds `listen` and spawns the wire loop — one I/O thread driving
    /// the listener and every peer connection (peers may be down; the
    /// loop re-dials forever).
    ///
    /// Metrics are recorded into a private registry; use
    /// [`Transport::start_with_metrics`] to share the replica's.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound.
    pub fn start(
        id: ServerId,
        listen: SocketAddr,
        peers: BTreeMap<ServerId, SocketAddr>,
    ) -> std::io::Result<Transport> {
        Transport::start_with_metrics(id, listen, peers, Arc::new(Registry::new()))
    }

    /// [`Transport::start`] recording into `metrics`: per-peer counters
    /// `transport.{bytes,frames}_{in,out}.<peer>`, dial accounting
    /// `transport.{connects,connect_failures,disconnects}.<peer>`, the
    /// `transport.send_queue_depth.<peer>` gauge, per-flush
    /// `transport.batch_{frames,bytes}.<peer>` histograms, and the
    /// node-wide `transport.send_dropped` counter. Instruments must exist
    /// at thread spawn, which is why the registry is a constructor argument
    /// rather than a `set_metrics` seam.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound.
    pub fn start_with_metrics(
        id: ServerId,
        listen: SocketAddr,
        peers: BTreeMap<ServerId, SocketAddr>,
        metrics: Arc<Registry>,
    ) -> std::io::Result<Transport> {
        Transport::start_traced(id, listen, peers, metrics, Tracer::disabled())
    }

    /// [`Transport::start_with_metrics`] plus a flight-recorder handle:
    /// every traced Zab message (PROPOSE/ACK/COMMIT) records a `wire-out`
    /// instant when queued and a `wire-in` instant when decoded off a
    /// peer's connection, keyed by the zxid carried in the frame — no
    /// extra wire bytes. Like the registry, the tracer is a constructor
    /// argument because the wire loop captures it at spawn.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound or the I/O thread
    /// cannot be spawned.
    pub fn start_traced(
        id: ServerId,
        listen: SocketAddr,
        peers: BTreeMap<ServerId, SocketAddr>,
        metrics: Arc<Registry>,
        tracer: Tracer,
    ) -> std::io::Result<Transport> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (events_tx, events_rx) = unbounded();
        let (waker, wake_rx) = poller::waker()?;
        let stop = Arc::new(AtomicBool::new(false));
        let send_dropped = metrics.counter("transport.send_dropped");
        // Built on the caller's thread so every instrument exists before
        // the constructor returns.
        let wire_loop = WireLoop::new(
            id,
            listener,
            &peers,
            wake_rx,
            events_tx,
            Arc::clone(&stop),
            Arc::clone(&metrics),
            tracer.clone(),
        );
        let outs = wire_loop.outbound_handles();
        let io_thread = std::thread::Builder::new()
            .name(format!("zab-wire-{}", id.0))
            .spawn(move || wire_loop.run())?;
        Ok(Transport {
            id,
            peers: peers.keys().copied().filter(|&p| p != id).collect(),
            outs,
            waker,
            events_rx,
            stop,
            io_thread: Mutex::new(Some(io_thread)),
            local_addr,
            metrics,
            send_dropped,
            tracer,
        })
    }

    /// The registry this transport records into.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// This endpoint's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sends `msg` to `peer`, written inline on this thread when the
    /// socket can take it. Messages to unknown peers, or sent while the
    /// peer is unreachable, are dropped without panicking — the protocol
    /// treats the channel as broken either way — and counted in
    /// `transport.send_dropped`.
    pub fn send(&self, peer: ServerId, msg: TransportMsg) {
        let Some(out) = self.outs.get(&peer) else {
            self.send_dropped.inc();
            return;
        };
        if let Some(zxid) = msg.traced_zxid() {
            self.tracer.instant(Stage::WireOut, zxid, peer.0);
        }
        let Some(frame) = Frame::try_new(msg.encode()) else {
            // Unframeable message (over MAX_FRAME_LEN): skipping it would
            // silently violate FIFO, so break the channel visibly — the
            // protocol's normal recovery for a broken channel takes over.
            self.send_dropped.inc();
            if out.poison() {
                self.waker.wake();
            }
            return;
        };
        match out.offer(frame) {
            Offer::Sent => {}
            Offer::SentNeedsWake => self.waker.wake(),
            Offer::Dropped => self.send_dropped.inc(),
        }
    }

    /// Queues `msg` for every peer, encoding it exactly once: one frame
    /// (payload + checksum) is built and every peer's write buffer holds
    /// a refcounted handle to it, so the per-peer cost is independent of
    /// the payload size.
    pub fn broadcast(&self, msg: TransportMsg) {
        let peers = self.peers.clone();
        self.broadcast_to(&peers, msg);
    }

    /// [`Transport::broadcast`] restricted to an explicit target set —
    /// the fan-out primitive the leader uses to reach exactly its active
    /// followers. Unknown targets (and `self`) are skipped; unknown ones
    /// count as dropped. One encode, one frame, N handles, each flushed
    /// inline into its peer's socket.
    pub fn broadcast_to(&self, peers: &[ServerId], msg: TransportMsg) {
        let traced = msg.traced_zxid();
        let mut frame: Option<Frame> = None;
        let mut unframeable = false;
        let mut need_wake = false;
        for &peer in peers {
            if peer == self.id {
                continue;
            }
            let Some(out) = self.outs.get(&peer) else {
                self.send_dropped.inc();
                continue;
            };
            if let Some(zxid) = traced {
                self.tracer.instant(Stage::WireOut, zxid, peer.0);
            }
            // Encode lazily — a broadcast whose every target is unknown
            // never encodes at all — then clone handles, never bytes. An
            // unframeable message poisons every reachable target: FIFO
            // breaks visibly rather than silently skipping a message.
            if frame.is_none() && !unframeable {
                frame = Frame::try_new(msg.encode());
                unframeable = frame.is_none();
            }
            let Some(f) = &frame else {
                self.send_dropped.inc();
                need_wake |= out.poison();
                continue;
            };
            match out.offer(f.clone()) {
                Offer::Sent => {}
                Offer::SentNeedsWake => need_wake = true,
                Offer::Dropped => self.send_dropped.inc(),
            }
        }
        if need_wake {
            self.waker.wake();
        }
    }

    /// Corks `msg` into `peer`'s write buffer without flushing. Callers
    /// own the batch boundary: after queueing everything an event batch
    /// produced, [`Transport::flush`] sends it all in one vectored write
    /// per peer. Dropping semantics match [`Transport::send`].
    pub fn queue(&self, peer: ServerId, msg: TransportMsg) {
        let Some(out) = self.outs.get(&peer) else {
            self.send_dropped.inc();
            return;
        };
        if let Some(zxid) = msg.traced_zxid() {
            self.tracer.instant(Stage::WireOut, zxid, peer.0);
        }
        let Some(frame) = Frame::try_new(msg.encode()) else {
            self.send_dropped.inc();
            if out.poison() {
                self.waker.wake();
            }
            return;
        };
        if matches!(out.queue(frame), Offer::Dropped) {
            self.send_dropped.inc();
        }
    }

    /// [`Transport::broadcast_to`] that corks instead of flushing: one
    /// encode, N refcounted handles, all held until [`Transport::flush`].
    pub fn queue_broadcast(&self, peers: &[ServerId], msg: TransportMsg) {
        let traced = msg.traced_zxid();
        let mut frame: Option<Frame> = None;
        let mut unframeable = false;
        let mut need_wake = false;
        for &peer in peers {
            if peer == self.id {
                continue;
            }
            let Some(out) = self.outs.get(&peer) else {
                self.send_dropped.inc();
                continue;
            };
            if let Some(zxid) = traced {
                self.tracer.instant(Stage::WireOut, zxid, peer.0);
            }
            if frame.is_none() && !unframeable {
                frame = Frame::try_new(msg.encode());
                unframeable = frame.is_none();
            }
            let Some(f) = &frame else {
                self.send_dropped.inc();
                need_wake |= out.poison();
                continue;
            };
            if matches!(out.queue(f.clone()), Offer::Dropped) {
                self.send_dropped.inc();
            }
        }
        if need_wake {
            self.waker.wake();
        }
    }

    /// Flushes every peer with corked frames — the batch boundary. Peers
    /// untouched since the last flush cost one atomic load each. Wakes
    /// the wire loop at most once, and only if some socket couldn't take
    /// its whole batch.
    pub fn flush(&self) {
        let mut need_wake = false;
        for out in self.outs.values() {
            need_wake |= out.flush_pending();
        }
        if need_wake {
            self.waker.wake();
        }
    }

    /// The inbound event stream.
    pub fn events(&self) -> &Receiver<TransportEvent> {
        &self.events_rx
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.io_thread.lock().take() {
            let _ = t.join();
        }
        // The loop closes every socket and drops the only events sender
        // on its way out; repeat the outbound shutdown here so even an
        // abnormal loop exit cannot leak a socket past this point.
        for out in self.outs.values() {
            out.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn::MAX_BATCH_FRAMES;
    use std::thread;
    use std::time::{Duration, Instant};
    use zab_core::{Epoch, Txn, Zxid};
    use zab_wire::frame::HEADER_LEN;

    fn wait_msg(t: &Transport, timeout: Duration) -> Option<TransportEvent> {
        t.events().recv_timeout(timeout).ok()
    }

    fn mesh(n: u64) -> Vec<Transport> {
        // Bind ephemeral ports first, then wire the address book.
        let listeners: Vec<(ServerId, SocketAddr)> = (1..=n)
            .map(|i| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = l.local_addr().expect("addr");
                drop(l);
                (ServerId(i), addr)
            })
            .collect();
        let book: BTreeMap<ServerId, SocketAddr> = listeners.iter().copied().collect();
        listeners
            .iter()
            .map(|&(id, addr)| Transport::start(id, addr, book.clone()).expect("start"))
            .collect()
    }

    #[test]
    fn dial_failures_surface_as_connect_failed_events() {
        // Peer 2's address is reserved but nothing listens on it.
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a1 = l1.local_addr().expect("addr");
        drop(l1);
        let l2 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a2 = l2.local_addr().expect("addr");
        drop(l2);
        let book: BTreeMap<ServerId, SocketAddr> =
            [(ServerId(1), a1), (ServerId(2), a2)].into_iter().collect();
        let t = Transport::start(ServerId(1), a1, book).expect("start");
        t.send(ServerId(2), TransportMsg::Zab(Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));

        let mut attempts = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while attempts.len() < 3 && Instant::now() < deadline {
            if let Some(TransportEvent::ConnectFailed { peer, attempt, error }) =
                wait_msg(&t, Duration::from_millis(300))
            {
                assert_eq!(peer, ServerId(2));
                assert!(!error.is_empty());
                attempts.push(attempt);
            }
        }
        // Consecutive failures are counted, proving the backoff advances.
        assert_eq!(attempts, vec![0, 1, 2], "expected escalating attempt counts");
    }

    #[test]
    fn message_round_trip_between_two_nodes() {
        let mesh = mesh(2);
        let msg = Message::Ack { zxid: Zxid::new(Epoch(1), 7) };
        // Retry: the receiver's accept loop may still be settling.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0].send(ServerId(2), TransportMsg::Zab(msg.clone()));
            if let Some(TransportEvent::Message { from, msg: got }) =
                wait_msg(&mesh[1], Duration::from_millis(300))
            {
                assert_eq!(from, ServerId(1));
                match got {
                    TransportMsg::Zab(m) => assert_eq!(m, msg),
                    other => panic!("wrong channel: {other:?}"),
                }
                break;
            }
            assert!(Instant::now() < deadline, "message never arrived");
        }
    }

    #[test]
    fn broadcast_reaches_every_peer_with_one_encoding() {
        let mesh = mesh(3);
        let msg = Message::Commit { zxid: Zxid::new(Epoch(2), 5) };
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = [false; 2];
        loop {
            mesh[0].broadcast(TransportMsg::Zab(msg.clone()));
            for (i, t) in mesh[1..].iter().enumerate() {
                if let Some(TransportEvent::Message { from, msg: TransportMsg::Zab(m) }) =
                    wait_msg(t, Duration::from_millis(300))
                {
                    assert_eq!(from, ServerId(1));
                    assert_eq!(m, msg);
                    got[i] = true;
                }
            }
            if got.iter().all(|&g| g) {
                break;
            }
            assert!(Instant::now() < deadline, "broadcast never fully arrived");
        }
    }

    #[test]
    fn oversized_message_breaks_channel_instead_of_panicking() {
        let mesh = mesh(2);
        // Bring the channel up first.
        let probe = Message::Ack { zxid: Zxid::new(Epoch(1), 1) };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0].send(ServerId(2), TransportMsg::Zab(probe.clone()));
            if wait_msg(&mesh[1], Duration::from_millis(300)).is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "channel never came up");
        }
        // A payload over MAX_FRAME_LEN cannot be framed. The contract is
        // a *visible* channel break (FIFO must never silently skip), not
        // a panic on the sending thread.
        // The realistic overflow shape: a sync DIFF whose many individually
        // small transactions add up past the frame limit.
        let chunk = 1 << 20;
        let giant = Message::SyncDiff {
            txns: (0..(zab_wire::frame::MAX_FRAME_LEN / chunk + 2) as u32)
                .map(|i| Txn {
                    zxid: Zxid::new(Epoch(1), i + 2),
                    data: Bytes::from(vec![0u8; chunk]),
                })
                .collect(),
        };
        let dropped_before = mesh[0].metrics().snapshot().counter("transport.send_dropped");
        mesh[0].send(ServerId(2), TransportMsg::Zab(giant));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match wait_msg(&mesh[0], Duration::from_millis(300)) {
                Some(TransportEvent::PeerDisconnected { peer }) => {
                    assert_eq!(peer, ServerId(2));
                    break;
                }
                _ => assert!(Instant::now() < deadline, "channel never broke"),
            }
        }
        let dropped_after = mesh[0].metrics().snapshot().counter("transport.send_dropped");
        assert_eq!(dropped_after, dropped_before + 1);
    }

    #[test]
    fn corked_batch_flushes_in_order() {
        let mesh = mesh(2);
        // Establish the channel first: queue() drops while disconnected.
        let probe = Message::Ack { zxid: Zxid::new(Epoch(1), 1) };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0].send(ServerId(2), TransportMsg::Zab(probe.clone()));
            if wait_msg(&mesh[1], Duration::from_millis(300)).is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "channel never came up");
        }
        // Cork a burst, then release it with one flush; every frame must
        // arrive, in order, behind that single batch boundary.
        let n = 32u32;
        for i in 0..n {
            mesh[0].queue(
                ServerId(2),
                TransportMsg::Zab(Message::Ack { zxid: Zxid::new(Epoch(1), i + 10) }),
            );
        }
        mesh[0].flush();
        for i in 0..n {
            match wait_msg(&mesh[1], Duration::from_secs(5)) {
                Some(TransportEvent::Message {
                    from,
                    msg: TransportMsg::Zab(Message::Ack { zxid }),
                }) => {
                    assert_eq!(from, ServerId(1));
                    assert_eq!(zxid, Zxid::new(Epoch(1), i + 10), "batch arrived out of order");
                }
                other => panic!("expected ack {i}, got {other:?}"),
            }
        }
        // The whole burst shared one vectored write: the per-peer batch
        // histogram must have seen a multi-frame flush.
        let snap = mesh[0].metrics().snapshot();
        let max_batch = snap.histogram("transport.batch_frames.2").map_or(0, |h| h.max);
        assert!(max_batch >= 2, "expected a coalesced flush, max batch = {max_batch}");
    }

    #[test]
    fn per_peer_metrics_count_frames_and_bytes() {
        let mesh = mesh(2);
        let msg = Message::Ack { zxid: Zxid::new(Epoch(3), 11) };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0].send(ServerId(2), TransportMsg::Zab(msg.clone()));
            if wait_msg(&mesh[1], Duration::from_millis(300)).is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "message never arrived");
        }
        let sender = mesh[0].metrics().snapshot();
        assert!(sender.counter("transport.connects.2") >= 1);
        assert!(sender.counter("transport.frames_out.2") >= 1);
        // Every frame carries a header plus a non-empty payload.
        assert!(sender.counter("transport.bytes_out.2") > HEADER_LEN as u64);
        let receiver = mesh[1].metrics().snapshot();
        assert!(receiver.counter("transport.frames_in.1") >= 1);
        assert!(receiver.counter_sum("transport.bytes_in.") > HEADER_LEN as u64);
    }

    #[test]
    fn connect_failures_are_counted() {
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a1 = l1.local_addr().expect("addr");
        drop(l1);
        let l2 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a2 = l2.local_addr().expect("addr");
        drop(l2);
        let book: BTreeMap<ServerId, SocketAddr> =
            [(ServerId(1), a1), (ServerId(2), a2)].into_iter().collect();
        let t = Transport::start(ServerId(1), a1, book).expect("start");
        t.send(ServerId(2), TransportMsg::Zab(Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if t.metrics().snapshot().counter("transport.connect_failures.2") >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "dial failure never counted");
            thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn election_channel_is_distinguished() {
        let mesh = mesh(2);
        let n = Notification {
            round: 3,
            state: zab_election::NodeState::Looking,
            vote: zab_election::Vote {
                peer_epoch: Epoch(1),
                last_zxid: Zxid::new(Epoch(1), 4),
                leader: ServerId(2),
            },
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[1].send(ServerId(1), TransportMsg::Election(n));
            if let Some(TransportEvent::Message { from, msg }) =
                wait_msg(&mesh[0], Duration::from_millis(300))
            {
                assert_eq!(from, ServerId(2));
                match msg {
                    TransportMsg::Election(got) => assert_eq!(got, n),
                    other => panic!("wrong channel: {other:?}"),
                }
                break;
            }
            assert!(Instant::now() < deadline, "notification never arrived");
        }
    }

    #[test]
    fn fifo_order_preserved_under_burst() {
        let mesh = mesh(2);
        let count = 500u32;
        // Wait until the link is up (first message observed), then burst.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0]
                .send(ServerId(2), TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
            if wait_msg(&mesh[1], Duration::from_millis(200)).is_some() {
                break;
            }
            assert!(Instant::now() < deadline);
        }
        for c in 1..=count {
            let txn = Txn::new(Zxid::new(Epoch(1), c), c.to_le_bytes().to_vec());
            mesh[0].send(
                ServerId(2),
                TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO }),
            );
        }
        let mut seen = 0u32;
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen < count && Instant::now() < deadline {
            if let Some(TransportEvent::Message {
                msg: TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO }),
                ..
            }) = wait_msg(&mesh[1], Duration::from_millis(500))
            {
                seen += 1;
                assert_eq!(txn.zxid.counter(), seen, "reordered at {seen}");
            }
        }
        assert_eq!(seen, count, "lost messages on a healthy connection");

        // The burst flowed through the coalescing flush: the per-batch
        // histograms must account for exactly the frames and bytes the
        // counters saw (every frame left in some batch, never outside one).
        let snap = mesh[0].metrics().snapshot();
        let frames = snap.counter("transport.frames_out.2");
        let bytes = snap.counter("transport.bytes_out.2");
        let bf = snap.histogram("transport.batch_frames.2").cloned().unwrap_or_default();
        let bb = snap.histogram("transport.batch_bytes.2").cloned().unwrap_or_default();
        assert_eq!(bf.sum, frames, "batch_frames histogram must cover every frame");
        assert!(bf.count >= 1 && bf.count <= frames, "batches outnumber frames");
        assert_eq!(bb.sum, bytes, "batch_bytes histogram must cover every byte");
        assert!(bf.max as usize <= MAX_BATCH_FRAMES, "batch exceeded the frame cap");
    }

    #[test]
    fn send_to_unknown_peer_is_dropped_silently_and_counted() {
        let mesh = mesh(1);
        mesh[0].send(ServerId(99), TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
        assert!(wait_msg(&mesh[0], Duration::from_millis(100)).is_none());
        // The no-panic contract holds, but the drop is no longer silent
        // to operators.
        assert_eq!(mesh[0].metrics().snapshot().counter("transport.send_dropped"), 1);
        mesh[0].broadcast_to(
            &[ServerId(99), ServerId(1)],
            TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }),
        );
        assert_eq!(mesh[0].metrics().snapshot().counter("transport.send_dropped"), 2);
    }

    #[test]
    fn send_while_peer_unreachable_is_counted_as_dropped() {
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a1 = l1.local_addr().expect("addr");
        drop(l1);
        let l2 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a2 = l2.local_addr().expect("addr");
        drop(l2);
        let book: BTreeMap<ServerId, SocketAddr> =
            [(ServerId(1), a1), (ServerId(2), a2)].into_iter().collect();
        let t = Transport::start(ServerId(1), a1, book).expect("start");
        // Wait until the first dial has already failed (peer marked
        // unreachable), then send into the backoff window.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if t.metrics().snapshot().counter("transport.connect_failures.2") >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "dial failure never counted");
            thread::sleep(Duration::from_millis(10));
        }
        t.send(ServerId(2), TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if t.metrics().snapshot().counter("transport.send_dropped") >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "drop never counted");
            thread::sleep(Duration::from_millis(10));
        }
    }

    /// Satellite: deterministic shutdown. Every mesh's I/O threads must
    /// join cleanly on `Drop` with no lingering sockets — 50 rounds of
    /// create/traffic/drop would hang or leak fds within the suite's
    /// timeout if teardown ever raced.
    #[test]
    fn shutdown_hammer_creates_and_drops_fifty_meshes() {
        for round in 0..50 {
            let m = mesh(3);
            // Exercise all states: some traffic in flight, some queued,
            // some meshes dropped before any connection establishes.
            if round % 2 == 0 {
                for t in &m {
                    t.broadcast(TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
                }
            }
            drop(m);
        }
    }

    #[test]
    fn transport_msg_decode_rejects_garbage() {
        assert!(TransportMsg::decode(Bytes::new()).is_none());
        assert!(TransportMsg::decode(Bytes::from_static(&[7, 1, 2, 3])).is_none());
        assert!(TransportMsg::decode(Bytes::from_static(&[0, 0xFF])).is_none());
    }

    #[test]
    fn encode_round_trips_through_decode() {
        let txn = Txn::new(Zxid::new(Epoch(2), 9), Bytes::from(vec![0xAB; 4096]));
        let msg = TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO });
        let encoded = msg.encode();
        match TransportMsg::decode(encoded).expect("decodes") {
            TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO }) => {
                assert_eq!(txn.zxid, Zxid::new(Epoch(2), 9));
                assert_eq!(txn.data.as_ref(), &[0xAB; 4096][..]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
