//! # zab-transport — TCP mesh for Zab replicas
//!
//! Zab assumes FIFO channels that either deliver intact, in-order bytes or
//! break visibly — exactly TCP's contract. This crate provides that
//! substrate for real deployments:
//!
//! - every node keeps **one outgoing connection per peer**, used only for
//!   its own sends (so each direction is an independent FIFO channel and
//!   no connection-dueling logic is needed),
//! - connections carry an 8-byte handshake (the sender's [`ServerId`])
//!   followed by checksummed frames ([`zab_wire::frame`]), each framing a
//!   1-byte channel tag (Zab protocol vs. leader election) plus the
//!   encoded message,
//! - a broken connection surfaces as [`TransportEvent::PeerDisconnected`]
//!   and queued unsent messages are *dropped* — the protocol automata
//!   treat a channel break as fatal to the session and resynchronize, so
//!   delivering stale traffic on a fresh connection would be wrong,
//! - outgoing connections retry with **capped exponential backoff plus
//!   deterministic jitter** (seeded from the `(me, peer)` pair, so retry
//!   timing replays in tests and peers don't thundering-herd a rebooted
//!   node), and every failed dial surfaces as
//!   [`TransportEvent::ConnectFailed`] rather than vanishing,
//! - inbound readers block on the socket (no timeout polling); teardown
//!   shuts the sockets down explicitly to unblock them.
//!
//! The transport is deliberately thread-per-connection over `std::net`:
//! ensembles are small (3–13 servers), so clarity beats an async runtime
//! here, and the crate stays within the workspace's dependency policy.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use zab_core::{Message, ServerId};
use zab_election::Notification;
use zab_metrics::{peer_metric, Registry};
use zab_trace::{Stage, Tracer};
use zab_wire::frame::{frame_header, FrameDecoder, HEADER_LEN};

/// A message on the mesh: protocol or election traffic.
#[derive(Debug, Clone)]
pub enum TransportMsg {
    /// Zab protocol message.
    Zab(Message),
    /// Fast-leader-election notification.
    Election(Notification),
}

impl TransportMsg {
    /// Encodes channel tag + message into one buffer, returned as
    /// refcounted [`Bytes`]: fanning the same message out to several peers
    /// clones the handle, never the encoded bytes.
    fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(16);
        match self {
            TransportMsg::Zab(m) => {
                buf.push(0u8);
                m.encode_into(&mut buf);
            }
            TransportMsg::Election(n) => {
                buf.push(1u8);
                buf.extend(n.encode());
            }
        }
        Bytes::from(buf)
    }

    /// The zxid to attribute this message to in the flight recorder.
    /// Only the broadcast-path messages (PROPOSE/ACK/COMMIT) are traced;
    /// heartbeats, election traffic, and sync streams would drown the
    /// per-transaction timelines in noise.
    fn traced_zxid(&self) -> Option<u64> {
        match self {
            TransportMsg::Zab(Message::Propose { txn, .. }) => Some(txn.zxid.0),
            TransportMsg::Zab(Message::Ack { zxid })
            | TransportMsg::Zab(Message::Commit { zxid }) => Some(zxid.0),
            _ => None,
        }
    }

    /// Decodes a channel-tagged frame payload. Zab transaction payloads
    /// come back as zero-copy views of `data`.
    fn decode(data: Bytes) -> Option<TransportMsg> {
        let &tag = data.first()?;
        let rest = data.slice(1..);
        match tag {
            0 => Message::decode_bytes(rest).ok().map(TransportMsg::Zab),
            1 => Notification::decode(&rest).ok().map(TransportMsg::Election),
            _ => None,
        }
    }
}

/// Events surfaced to the replica's event loop.
#[derive(Debug, Clone)]
pub enum TransportEvent {
    /// A message arrived from `from`.
    Message {
        /// Sending server.
        from: ServerId,
        /// The message.
        msg: TransportMsg,
    },
    /// The FIFO channel to/from `peer` broke (either direction).
    PeerDisconnected {
        /// The peer.
        peer: ServerId,
    },
    /// An outgoing dial to `peer` failed; the sender is backing off.
    /// Surfaced so operators see unreachable peers instead of silence.
    ConnectFailed {
        /// The peer.
        peer: ServerId,
        /// Consecutive failures so far (0 = first).
        attempt: u32,
        /// The dial error.
        error: String,
    },
}

/// Commands to a per-peer sender thread. Payloads are refcounted so a
/// broadcast enqueues N handles to one encoding.
enum SendCmd {
    Msg(Bytes),
    Stop,
}

/// The TCP mesh endpoint for one replica.
///
/// Create with [`Transport::start`]; send with [`Transport::send`]; drain
/// [`Transport::events`] from the replica's event loop. Dropping the
/// transport stops all threads.
pub struct Transport {
    id: ServerId,
    senders: BTreeMap<ServerId, Sender<SendCmd>>,
    events_rx: Receiver<TransportEvent>,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    local_addr: SocketAddr,
    /// Clones of live inbound sockets, keyed by connection id. Readers
    /// block on these; `Drop` shuts them down to unblock the threads.
    inbound: ConnRegistry,
    /// Metrics registry shared with the sender/reader threads
    /// (per-peer instruments under `transport.*.<peer>`).
    metrics: Arc<Registry>,
    /// Flight-recorder handle: wire-out/wire-in instants for broadcast
    /// traffic (disabled unless built via [`Transport::start_traced`]).
    tracer: Tracer,
}

/// Registry of live inbound connections (see [`Transport::inbound`]).
type ConnRegistry = Arc<Mutex<BTreeMap<u64, TcpStream>>>;

impl Transport {
    /// Binds `listen` and spawns the accept loop plus one sender thread per
    /// peer in `peers` (peers may be down; senders retry forever).
    ///
    /// Metrics are recorded into a private registry; use
    /// [`Transport::start_with_metrics`] to share the replica's.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound.
    pub fn start(
        id: ServerId,
        listen: SocketAddr,
        peers: BTreeMap<ServerId, SocketAddr>,
    ) -> std::io::Result<Transport> {
        Transport::start_with_metrics(id, listen, peers, Arc::new(Registry::new()))
    }

    /// [`Transport::start`] recording into `metrics`: per-peer counters
    /// `transport.{bytes,frames}_{in,out}.<peer>`, dial accounting
    /// `transport.{connects,connect_failures,disconnects}.<peer>`, and the
    /// `transport.send_queue_depth.<peer>` gauge. Instruments must exist
    /// at thread spawn, which is why the registry is a constructor argument
    /// rather than a `set_metrics` seam.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound.
    pub fn start_with_metrics(
        id: ServerId,
        listen: SocketAddr,
        peers: BTreeMap<ServerId, SocketAddr>,
        metrics: Arc<Registry>,
    ) -> std::io::Result<Transport> {
        Transport::start_traced(id, listen, peers, metrics, Tracer::disabled())
    }

    /// [`Transport::start_with_metrics`] plus a flight-recorder handle:
    /// every traced Zab message (PROPOSE/ACK/COMMIT) records a `wire-out`
    /// instant when queued and a `wire-in` instant when decoded off a
    /// peer's connection, keyed by the zxid carried in the frame — no
    /// extra wire bytes. Like the registry, the tracer is a constructor
    /// argument because reader threads capture it at spawn.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound.
    pub fn start_traced(
        id: ServerId,
        listen: SocketAddr,
        peers: BTreeMap<ServerId, SocketAddr>,
        metrics: Arc<Registry>,
        tracer: Tracer,
    ) -> std::io::Result<Transport> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (events_tx, events_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        let mut senders = BTreeMap::new();

        // Accept loop: reads inbound FIFO channels.
        let inbound: ConnRegistry = Arc::new(Mutex::new(BTreeMap::new()));
        {
            let events_tx = events_tx.clone();
            let stop = Arc::clone(&stop);
            let inbound = Arc::clone(&inbound);
            let metrics = Arc::clone(&metrics);
            let tracer = tracer.clone();
            threads.push(thread::spawn(move || {
                accept_loop(listener, events_tx, stop, inbound, metrics, tracer);
            }));
        }

        // One sender per peer.
        for (&peer, &addr) in &peers {
            if peer == id {
                continue;
            }
            let (tx, rx) = unbounded::<SendCmd>();
            senders.insert(peer, tx);
            let events_tx = events_tx.clone();
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            threads.push(thread::spawn(move || {
                sender_loop(id, peer, addr, rx, events_tx, stop, metrics);
            }));
        }

        Ok(Transport {
            id,
            senders,
            events_rx,
            stop,
            threads: Mutex::new(threads),
            local_addr,
            inbound,
            metrics,
            tracer,
        })
    }

    /// The registry this transport records into.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// This endpoint's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Queues `msg` for `peer`. Messages to unknown peers, or queued while
    /// the peer is unreachable, are silently dropped — the protocol treats
    /// the channel as broken either way.
    pub fn send(&self, peer: ServerId, msg: TransportMsg) {
        if let Some(tx) = self.senders.get(&peer) {
            if let Some(zxid) = msg.traced_zxid() {
                self.tracer.instant(Stage::WireOut, zxid, peer.0);
            }
            let _ = tx.send(SendCmd::Msg(msg.encode()));
        }
    }

    /// Queues `msg` for every peer, encoding it exactly once: each sender
    /// thread receives a clone of the same refcounted buffer, so the
    /// per-peer cost is independent of the payload size.
    pub fn broadcast(&self, msg: TransportMsg) {
        let traced = msg.traced_zxid();
        let encoded = msg.encode();
        for (peer, tx) in &self.senders {
            if let Some(zxid) = traced {
                self.tracer.instant(Stage::WireOut, zxid, peer.0);
            }
            let _ = tx.send(SendCmd::Msg(encoded.clone()));
        }
    }

    /// The inbound event stream.
    pub fn events(&self) -> &Receiver<TransportEvent> {
        &self.events_rx
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock readers parked in blocking reads.
        for conn in self.inbound.lock().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for tx in self.senders.values() {
            let _ = tx.send(SendCmd::Stop);
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// First reconnect delay after a dial failure.
const CONNECT_BASE_DELAY_MS: u64 = 10;
/// Backoff ceiling.
const CONNECT_MAX_DELAY_MS: u64 = 1_000;
/// Accept-loop poll cadence (one thread per process).
const POLL_DELAY: Duration = Duration::from_millis(5);
/// Most frames one coalesced `write_vectored` covers.
const MAX_BATCH_FRAMES: usize = 64;
/// Soft byte cap per coalesced write: draining stops once the batch
/// crosses this (a single larger frame still goes out whole).
const MAX_BATCH_BYTES: usize = 256 * 1024;

/// Capped exponential backoff with *deterministic* jitter: delays grow
/// `base·2^attempt` up to the cap, each drawn uniformly from
/// `[d/2, d]` by a splitmix64 stream seeded from the `(me, peer)` pair.
/// Jitter decorrelates peers re-dialing a rebooted node (no thundering
/// herd) while staying replayable: the same pair always produces the
/// same delay sequence.
#[derive(Debug)]
struct Backoff {
    state: u64,
    attempt: u32,
}

impl Backoff {
    fn new(me: ServerId, peer: ServerId) -> Backoff {
        Backoff {
            state: me.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ peer.0.rotate_left(32)
                ^ 0xA076_1D64_78BD_642F,
            attempt: 0,
        }
    }

    fn splitmix(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Consecutive failures so far.
    fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Delay before the next dial; advances the attempt counter.
    fn next_delay(&mut self) -> Duration {
        let exp = CONNECT_BASE_DELAY_MS << self.attempt.min(16);
        let capped = exp.min(CONNECT_MAX_DELAY_MS);
        self.attempt = self.attempt.saturating_add(1);
        let half = capped / 2;
        let jitter = self.splitmix() % (capped - half + 1);
        Duration::from_millis(half + jitter)
    }

    /// Back to the base delay (called on successful connect).
    fn reset(&mut self) {
        self.attempt = 0;
    }
}

fn accept_loop(
    listener: TcpListener,
    events_tx: Sender<TransportEvent>,
    stop: Arc<AtomicBool>,
    inbound: ConnRegistry,
    metrics: Arc<Registry>,
    tracer: Tracer,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    inbound.lock().insert(conn_id, clone);
                }
                let events_tx = events_tx.clone();
                let inbound = Arc::clone(&inbound);
                let stop = Arc::clone(&stop);
                let metrics = Arc::clone(&metrics);
                let tracer = tracer.clone();
                readers.push(thread::spawn(move || {
                    reader_loop(stream, events_tx, stop, metrics, tracer);
                    inbound.lock().remove(&conn_id);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_DELAY);
            }
            Err(_) => break,
        }
    }
    for r in readers {
        let _ = r.join();
    }
}

/// Reads one inbound connection: handshake, then frames. Reads block —
/// no timeout polling; [`Transport`]'s `Drop` shuts the socket down to
/// unblock this thread at teardown.
fn reader_loop(
    mut stream: TcpStream,
    events_tx: Sender<TransportEvent>,
    stop: Arc<AtomicBool>,
    metrics: Arc<Registry>,
    tracer: Tracer,
) {
    let _ = stream.set_nodelay(true);
    // Handshake: 8-byte peer id.
    let mut hs = [0u8; 8];
    if stream.read_exact(&mut hs).is_err() {
        return;
    }
    let peer = ServerId(u64::from_le_bytes(hs));
    let bytes_in = metrics.counter(&peer_metric("transport.bytes_in", peer.0));
    let frames_in = metrics.counter(&peer_metric("transport.frames_in", peer.0));
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF: peer closed (or teardown shutdown).
            Ok(n) => {
                bytes_in.add(n as u64);
                decoder.extend(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(payload)) => {
                            frames_in.inc();
                            if let Some(msg) = TransportMsg::decode(payload) {
                                if let Some(zxid) = msg.traced_zxid() {
                                    tracer.instant(Stage::WireIn, zxid, peer.0);
                                }
                                let _ = events_tx.send(TransportEvent::Message { from: peer, msg });
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Corrupt stream: the channel is dead.
                            let _ = events_tx.send(TransportEvent::PeerDisconnected { peer });
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = events_tx.send(TransportEvent::PeerDisconnected { peer });
}

/// Maintains the outgoing connection to one peer.
///
/// The hot path coalesces: after blocking on the first queued frame, it
/// drains whatever else is queued (up to [`MAX_BATCH_FRAMES`] /
/// [`MAX_BATCH_BYTES`]) and flushes the whole batch with one vectored
/// write — a saturated pipeline pays one syscall for dozens of frames.
/// Idle costs nothing: the wait is a plain blocking `recv`, woken only by
/// traffic or the explicit [`SendCmd::Stop`] teardown message (no
/// timeout polling). Only while *disconnected* does the loop use a timed
/// wait, sized to the backoff window, so re-dials happen even when idle.
fn sender_loop(
    me: ServerId,
    peer: ServerId,
    addr: SocketAddr,
    rx: Receiver<SendCmd>,
    events_tx: Sender<TransportEvent>,
    stop: Arc<AtomicBool>,
    metrics: Arc<Registry>,
) {
    let bytes_out = metrics.counter(&peer_metric("transport.bytes_out", peer.0));
    let frames_out = metrics.counter(&peer_metric("transport.frames_out", peer.0));
    let connects = metrics.counter(&peer_metric("transport.connects", peer.0));
    let connect_failures = metrics.counter(&peer_metric("transport.connect_failures", peer.0));
    let disconnects = metrics.counter(&peer_metric("transport.disconnects", peer.0));
    let queue_depth = metrics.gauge(&peer_metric("transport.send_queue_depth", peer.0));
    let batch_frames = metrics.histogram(&peer_metric("transport.batch_frames", peer.0));
    let batch_bytes = metrics.histogram(&peer_metric("transport.batch_bytes", peer.0));
    let mut conn: Option<TcpStream> = None;
    let mut backoff = Backoff::new(me, peer);
    let mut next_attempt = Instant::now();
    let mut batch: Vec<Bytes> = Vec::with_capacity(MAX_BATCH_FRAMES);
    loop {
        let cmd = if conn.is_some() {
            // Connected: block until traffic or Stop.
            match rx.recv() {
                Ok(cmd) => Some(cmd),
                Err(_) => return,
            }
        } else {
            // Disconnected: wake exactly when the backoff allows the next
            // dial — also while idle, so the first real send after a peer
            // returns doesn't pay the dial latency.
            let wait = next_attempt
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            match rx.recv_timeout(wait) {
                Ok(cmd) => Some(cmd),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if matches!(cmd, Some(SendCmd::Stop)) {
            return;
        }
        // Racy-but-cheap depth sample; diagnostics only.
        queue_depth.set(rx.len() as i64);
        if conn.is_none() && Instant::now() >= next_attempt {
            match try_connect(me, addr) {
                Ok(stream) => {
                    conn = Some(stream);
                    backoff.reset();
                    connects.inc();
                }
                Err(e) => {
                    let attempt = backoff.attempt();
                    next_attempt = Instant::now() + backoff.next_delay();
                    connect_failures.inc();
                    let _ = events_tx.send(TransportEvent::ConnectFailed {
                        peer,
                        attempt,
                        error: e.to_string(),
                    });
                }
            }
        }
        let Some(SendCmd::Msg(payload)) = cmd else { continue };
        if conn.is_none() {
            // Unreachable (dial failed or backoff pending): drop the
            // message; the protocol resynchronizes when the peer returns.
            continue;
        }
        // Coalesce: drain whatever queued behind the first frame, FIFO
        // order preserved.
        batch.clear();
        let mut body_bytes = payload.len();
        batch.push(payload);
        let mut stop_after_flush = false;
        while batch.len() < MAX_BATCH_FRAMES && body_bytes < MAX_BATCH_BYTES {
            match rx.try_recv() {
                Ok(SendCmd::Msg(p)) => {
                    body_bytes += p.len();
                    batch.push(p);
                }
                Ok(SendCmd::Stop) => {
                    // Flush what's already drained, then exit.
                    stop_after_flush = true;
                    break;
                }
                Err(_) => break,
            }
        }
        let stream = conn.as_mut().expect("connected");
        if write_batch(stream, &batch).is_err() {
            conn = None;
            // One immediate re-dial on a broken write, then backoff.
            next_attempt = Instant::now();
            disconnects.inc();
            let _ = events_tx.send(TransportEvent::PeerDisconnected { peer });
        } else {
            let wire_bytes = (body_bytes + HEADER_LEN * batch.len()) as u64;
            frames_out.add(batch.len() as u64);
            bytes_out.add(wire_bytes);
            batch_frames.record(batch.len() as u64);
            batch_bytes.record(wire_bytes);
        }
        if stop_after_flush {
            return;
        }
    }
}

/// Writes a batch of frames with vectored I/O: every frame's computed
/// header and payload are interleaved into one iovec, so a full batch
/// normally costs a single syscall and no frame is ever assembled in a
/// contiguous buffer. Handles partial writes by resuming mid-buffer.
fn write_batch(stream: &mut TcpStream, payloads: &[Bytes]) -> io::Result<()> {
    let headers: Vec<[u8; HEADER_LEN]> = payloads.iter().map(|p| frame_header(&[&p[..]])).collect();
    // Logical buffer sequence: h0, p0, h1, p1, ...
    let buf_at = |i: usize| -> &[u8] {
        if i.is_multiple_of(2) {
            &headers[i / 2]
        } else {
            &payloads[i / 2]
        }
    };
    let nbufs = payloads.len() * 2;
    let mut idx = 0; // first buffer not fully written
    let mut off = 0; // bytes of buf_at(idx) already written
    let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(nbufs);
    while idx < nbufs {
        iov.clear();
        iov.push(IoSlice::new(&buf_at(idx)[off..]));
        iov.extend((idx + 1..nbufs).map(|i| IoSlice::new(buf_at(i))));
        match stream.write_vectored(&iov) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(mut n) => {
                while n > 0 {
                    let remaining = buf_at(idx).len() - off;
                    if n >= remaining {
                        n -= remaining;
                        idx += 1;
                        off = 0;
                    } else {
                        off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn try_connect(me: ServerId, addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(200))?;
    let _ = stream.set_nodelay(true);
    stream.write_all(&me.0.to_le_bytes())?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use zab_core::{Epoch, Txn, Zxid};

    fn wait_msg(t: &Transport, timeout: Duration) -> Option<TransportEvent> {
        t.events().recv_timeout(timeout).ok()
    }

    fn mesh(n: u64) -> Vec<Transport> {
        // Bind ephemeral ports first, then wire the address book.
        let listeners: Vec<(ServerId, SocketAddr)> = (1..=n)
            .map(|i| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = l.local_addr().expect("addr");
                drop(l);
                (ServerId(i), addr)
            })
            .collect();
        let book: BTreeMap<ServerId, SocketAddr> = listeners.iter().copied().collect();
        listeners
            .iter()
            .map(|&(id, addr)| Transport::start(id, addr, book.clone()).expect("start"))
            .collect()
    }

    #[test]
    fn backoff_grows_to_cap_with_bounded_jitter() {
        let mut b = Backoff::new(ServerId(1), ServerId(2));
        let mut prev_floor = 0;
        for attempt in 0..20u32 {
            assert_eq!(b.attempt(), attempt);
            let exp = (CONNECT_BASE_DELAY_MS << attempt.min(16)).min(CONNECT_MAX_DELAY_MS);
            let d = b.next_delay().as_millis() as u64;
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d}ms outside [{}, {exp}]",
                exp / 2
            );
            assert!(exp / 2 >= prev_floor, "backoff floor regressed");
            prev_floor = exp / 2;
        }
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert!(b.next_delay() <= Duration::from_millis(CONNECT_BASE_DELAY_MS));
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_pair_and_differs_across_pairs() {
        let seq = |me, peer| {
            let mut b = Backoff::new(ServerId(me), ServerId(peer));
            (0..10).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1, 2), seq(1, 2), "same pair must replay identically");
        assert_ne!(seq(1, 2), seq(2, 1), "distinct pairs should decorrelate");
        assert_ne!(seq(1, 2), seq(1, 3), "distinct pairs should decorrelate");
    }

    #[test]
    fn dial_failures_surface_as_connect_failed_events() {
        // Peer 2's address is reserved but nothing listens on it.
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a1 = l1.local_addr().expect("addr");
        drop(l1);
        let l2 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a2 = l2.local_addr().expect("addr");
        drop(l2);
        let book: BTreeMap<ServerId, SocketAddr> =
            [(ServerId(1), a1), (ServerId(2), a2)].into_iter().collect();
        let t = Transport::start(ServerId(1), a1, book).expect("start");
        t.send(ServerId(2), TransportMsg::Zab(Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));

        let mut attempts = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while attempts.len() < 3 && Instant::now() < deadline {
            if let Some(TransportEvent::ConnectFailed { peer, attempt, error }) =
                wait_msg(&t, Duration::from_millis(300))
            {
                assert_eq!(peer, ServerId(2));
                assert!(!error.is_empty());
                attempts.push(attempt);
            }
        }
        // Consecutive failures are counted, proving the backoff advances.
        assert_eq!(attempts, vec![0, 1, 2], "expected escalating attempt counts");
    }

    #[test]
    fn message_round_trip_between_two_nodes() {
        let mesh = mesh(2);
        let msg = Message::Ack { zxid: Zxid::new(Epoch(1), 7) };
        // Retry: the receiver's accept loop may still be settling.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0].send(ServerId(2), TransportMsg::Zab(msg.clone()));
            if let Some(TransportEvent::Message { from, msg: got }) =
                wait_msg(&mesh[1], Duration::from_millis(300))
            {
                assert_eq!(from, ServerId(1));
                match got {
                    TransportMsg::Zab(m) => assert_eq!(m, msg),
                    other => panic!("wrong channel: {other:?}"),
                }
                break;
            }
            assert!(Instant::now() < deadline, "message never arrived");
        }
    }

    #[test]
    fn per_peer_metrics_count_frames_and_bytes() {
        let mesh = mesh(2);
        let msg = Message::Ack { zxid: Zxid::new(Epoch(3), 11) };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0].send(ServerId(2), TransportMsg::Zab(msg.clone()));
            if wait_msg(&mesh[1], Duration::from_millis(300)).is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "message never arrived");
        }
        let sender = mesh[0].metrics().snapshot();
        assert!(sender.counter("transport.connects.2") >= 1);
        assert!(sender.counter("transport.frames_out.2") >= 1);
        // Every frame carries a header plus a non-empty payload.
        assert!(sender.counter("transport.bytes_out.2") > HEADER_LEN as u64);
        let receiver = mesh[1].metrics().snapshot();
        assert!(receiver.counter("transport.frames_in.1") >= 1);
        assert!(receiver.counter_sum("transport.bytes_in.") > HEADER_LEN as u64);
    }

    #[test]
    fn connect_failures_are_counted() {
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a1 = l1.local_addr().expect("addr");
        drop(l1);
        let l2 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a2 = l2.local_addr().expect("addr");
        drop(l2);
        let book: BTreeMap<ServerId, SocketAddr> =
            [(ServerId(1), a1), (ServerId(2), a2)].into_iter().collect();
        let t = Transport::start(ServerId(1), a1, book).expect("start");
        t.send(ServerId(2), TransportMsg::Zab(Message::Ack { zxid: Zxid::new(Epoch(1), 1) }));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if t.metrics().snapshot().counter("transport.connect_failures.2") >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "dial failure never counted");
            thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn election_channel_is_distinguished() {
        let mesh = mesh(2);
        let n = Notification {
            round: 3,
            state: zab_election::NodeState::Looking,
            vote: zab_election::Vote {
                peer_epoch: Epoch(1),
                last_zxid: Zxid::new(Epoch(1), 4),
                leader: ServerId(2),
            },
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[1].send(ServerId(1), TransportMsg::Election(n));
            if let Some(TransportEvent::Message { from, msg }) =
                wait_msg(&mesh[0], Duration::from_millis(300))
            {
                assert_eq!(from, ServerId(2));
                match msg {
                    TransportMsg::Election(got) => assert_eq!(got, n),
                    other => panic!("wrong channel: {other:?}"),
                }
                break;
            }
            assert!(Instant::now() < deadline, "notification never arrived");
        }
    }

    #[test]
    fn fifo_order_preserved_under_burst() {
        let mesh = mesh(2);
        let count = 500u32;
        // Wait until the link is up (first message observed), then burst.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0]
                .send(ServerId(2), TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
            if wait_msg(&mesh[1], Duration::from_millis(200)).is_some() {
                break;
            }
            assert!(Instant::now() < deadline);
        }
        for c in 1..=count {
            let txn = Txn::new(Zxid::new(Epoch(1), c), c.to_le_bytes().to_vec());
            mesh[0].send(
                ServerId(2),
                TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO }),
            );
        }
        let mut seen = 0u32;
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen < count && Instant::now() < deadline {
            if let Some(TransportEvent::Message {
                msg: TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO }),
                ..
            }) = wait_msg(&mesh[1], Duration::from_millis(500))
            {
                seen += 1;
                assert_eq!(txn.zxid.counter(), seen, "reordered at {seen}");
            }
        }
        assert_eq!(seen, count, "lost messages on a healthy connection");

        // The burst flowed through the coalescing sender: the per-batch
        // histograms must account for exactly the frames and bytes the
        // counters saw (every frame left in some batch, never outside one).
        let snap = mesh[0].metrics().snapshot();
        let frames = snap.counter("transport.frames_out.2");
        let bytes = snap.counter("transport.bytes_out.2");
        let bf = snap.histogram("transport.batch_frames.2").cloned().unwrap_or_default();
        let bb = snap.histogram("transport.batch_bytes.2").cloned().unwrap_or_default();
        assert_eq!(bf.sum, frames, "batch_frames histogram must cover every frame");
        assert!(bf.count >= 1 && bf.count <= frames, "batches outnumber frames");
        assert_eq!(bb.sum, bytes, "batch_bytes histogram must cover every byte");
        assert!(bf.max as usize <= MAX_BATCH_FRAMES, "batch exceeded the frame cap");
    }

    #[test]
    fn send_to_unknown_peer_is_dropped_silently() {
        let mesh = mesh(1);
        mesh[0].send(ServerId(99), TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
        assert!(wait_msg(&mesh[0], Duration::from_millis(100)).is_none());
    }

    #[test]
    fn transport_msg_decode_rejects_garbage() {
        assert!(TransportMsg::decode(Bytes::new()).is_none());
        assert!(TransportMsg::decode(Bytes::from_static(&[7, 1, 2, 3])).is_none());
        assert!(TransportMsg::decode(Bytes::from_static(&[0, 0xFF])).is_none());
    }

    #[test]
    fn encode_round_trips_through_decode() {
        let txn = Txn::new(Zxid::new(Epoch(2), 9), Bytes::from(vec![0xAB; 4096]));
        let msg = TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO });
        let encoded = msg.encode();
        match TransportMsg::decode(encoded).expect("decodes") {
            TransportMsg::Zab(Message::Propose { txn, commit_up_to: Zxid::ZERO }) => {
                assert_eq!(txn.zxid, Zxid::new(Epoch(2), 9));
                assert_eq!(txn.data.as_ref(), &[0xAB; 4096][..]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
