//! # zab-transport — TCP mesh for Zab replicas
//!
//! Zab assumes FIFO channels that either deliver intact, in-order bytes or
//! break visibly — exactly TCP's contract. This crate provides that
//! substrate for real deployments:
//!
//! - every node keeps **one outgoing connection per peer**, used only for
//!   its own sends (so each direction is an independent FIFO channel and
//!   no connection-dueling logic is needed),
//! - connections carry an 8-byte handshake (the sender's [`ServerId`])
//!   followed by checksummed frames ([`zab_wire::frame`]), each framing a
//!   1-byte channel tag (Zab protocol vs. leader election) plus the
//!   encoded message,
//! - a broken connection surfaces as [`TransportEvent::PeerDisconnected`]
//!   and queued unsent messages are *dropped* — the protocol automata
//!   treat a channel break as fatal to the session and resynchronize, so
//!   delivering stale traffic on a fresh connection would be wrong,
//! - outgoing connections retry with a fixed backoff, so a rebooted peer
//!   is re-reachable without any management plumbing.
//!
//! The transport is deliberately thread-per-connection over `std::net`:
//! ensembles are small (3–13 servers), so clarity beats an async runtime
//! here, and the crate stays within the workspace's dependency policy.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use zab_core::{Message, ServerId};
use zab_election::Notification;
use zab_wire::frame::{frame_header, FrameDecoder, HEADER_LEN};

/// A message on the mesh: protocol or election traffic.
#[derive(Debug, Clone)]
pub enum TransportMsg {
    /// Zab protocol message.
    Zab(Message),
    /// Fast-leader-election notification.
    Election(Notification),
}

impl TransportMsg {
    /// Encodes channel tag + message into one buffer, returned as
    /// refcounted [`Bytes`]: fanning the same message out to several peers
    /// clones the handle, never the encoded bytes.
    fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(16);
        match self {
            TransportMsg::Zab(m) => {
                buf.push(0u8);
                m.encode_into(&mut buf);
            }
            TransportMsg::Election(n) => {
                buf.push(1u8);
                buf.extend(n.encode());
            }
        }
        Bytes::from(buf)
    }

    /// Decodes a channel-tagged frame payload. Zab transaction payloads
    /// come back as zero-copy views of `data`.
    fn decode(data: Bytes) -> Option<TransportMsg> {
        let &tag = data.first()?;
        let rest = data.slice(1..);
        match tag {
            0 => Message::decode_bytes(rest).ok().map(TransportMsg::Zab),
            1 => Notification::decode(&rest).ok().map(TransportMsg::Election),
            _ => None,
        }
    }
}

/// Events surfaced to the replica's event loop.
#[derive(Debug, Clone)]
pub enum TransportEvent {
    /// A message arrived from `from`.
    Message {
        /// Sending server.
        from: ServerId,
        /// The message.
        msg: TransportMsg,
    },
    /// The FIFO channel to/from `peer` broke (either direction).
    PeerDisconnected {
        /// The peer.
        peer: ServerId,
    },
}

/// Commands to a per-peer sender thread. Payloads are refcounted so a
/// broadcast enqueues N handles to one encoding.
enum SendCmd {
    Msg(Bytes),
    Stop,
}

/// The TCP mesh endpoint for one replica.
///
/// Create with [`Transport::start`]; send with [`Transport::send`]; drain
/// [`Transport::events`] from the replica's event loop. Dropping the
/// transport stops all threads.
pub struct Transport {
    id: ServerId,
    senders: BTreeMap<ServerId, Sender<SendCmd>>,
    events_rx: Receiver<TransportEvent>,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    local_addr: SocketAddr,
}

impl Transport {
    /// Binds `listen` and spawns the accept loop plus one sender thread per
    /// peer in `peers` (peers may be down; senders retry forever).
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound.
    pub fn start(
        id: ServerId,
        listen: SocketAddr,
        peers: BTreeMap<ServerId, SocketAddr>,
    ) -> std::io::Result<Transport> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (events_tx, events_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        let mut senders = BTreeMap::new();

        // Accept loop: reads inbound FIFO channels.
        {
            let events_tx = events_tx.clone();
            let stop = Arc::clone(&stop);
            threads.push(thread::spawn(move || {
                accept_loop(listener, events_tx, stop);
            }));
        }

        // One sender per peer.
        for (&peer, &addr) in &peers {
            if peer == id {
                continue;
            }
            let (tx, rx) = unbounded::<SendCmd>();
            senders.insert(peer, tx);
            let events_tx = events_tx.clone();
            let stop = Arc::clone(&stop);
            threads.push(thread::spawn(move || {
                sender_loop(id, peer, addr, rx, events_tx, stop);
            }));
        }

        Ok(Transport { id, senders, events_rx, stop, threads: Mutex::new(threads), local_addr })
    }

    /// This endpoint's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Queues `msg` for `peer`. Messages to unknown peers, or queued while
    /// the peer is unreachable, are silently dropped — the protocol treats
    /// the channel as broken either way.
    pub fn send(&self, peer: ServerId, msg: TransportMsg) {
        if let Some(tx) = self.senders.get(&peer) {
            let _ = tx.send(SendCmd::Msg(msg.encode()));
        }
    }

    /// Queues `msg` for every peer, encoding it exactly once: each sender
    /// thread receives a clone of the same refcounted buffer, so the
    /// per-peer cost is independent of the payload size.
    pub fn broadcast(&self, msg: TransportMsg) {
        let encoded = msg.encode();
        for tx in self.senders.values() {
            let _ = tx.send(SendCmd::Msg(encoded.clone()));
        }
    }

    /// The inbound event stream.
    pub fn events(&self) -> &Receiver<TransportEvent> {
        &self.events_rx
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for tx in self.senders.values() {
            let _ = tx.send(SendCmd::Stop);
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

const RETRY_DELAY: Duration = Duration::from_millis(50);
const POLL_DELAY: Duration = Duration::from_millis(5);

fn accept_loop(listener: TcpListener, events_tx: Sender<TransportEvent>, stop: Arc<AtomicBool>) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let events_tx = events_tx.clone();
                let stop = Arc::clone(&stop);
                readers.push(thread::spawn(move || reader_loop(stream, events_tx, stop)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_DELAY);
            }
            Err(_) => break,
        }
    }
    for r in readers {
        let _ = r.join();
    }
}

/// Reads one inbound connection: handshake, then frames.
fn reader_loop(mut stream: TcpStream, events_tx: Sender<TransportEvent>, stop: Arc<AtomicBool>) {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("socket supports read timeouts");
    let _ = stream.set_nodelay(true);
    // Handshake: 8-byte peer id.
    let mut hs = [0u8; 8];
    if read_exact_with_stop(&mut stream, &mut hs, &stop).is_err() {
        return;
    }
    let peer = ServerId(u64::from_le_bytes(hs));
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF: peer closed.
            Ok(n) => {
                decoder.extend(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(payload)) => {
                            if let Some(msg) = TransportMsg::decode(payload) {
                                let _ = events_tx.send(TransportEvent::Message { from: peer, msg });
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Corrupt stream: the channel is dead.
                            let _ = events_tx.send(TransportEvent::PeerDisconnected { peer });
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = events_tx.send(TransportEvent::PeerDisconnected { peer });
}

fn read_exact_with_stop(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "stopping"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof during handshake",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Maintains the outgoing connection to one peer.
fn sender_loop(
    me: ServerId,
    peer: ServerId,
    addr: SocketAddr,
    rx: Receiver<SendCmd>,
    events_tx: Sender<TransportEvent>,
    stop: Arc<AtomicBool>,
) {
    let mut conn: Option<TcpStream> = None;
    loop {
        let cmd = match rx.recv_timeout(RETRY_DELAY) {
            Ok(cmd) => Some(cmd),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match cmd {
            Some(SendCmd::Stop) => return,
            Some(SendCmd::Msg(payload)) => {
                if conn.is_none() {
                    conn = try_connect(me, addr);
                    if conn.is_none() {
                        // Unreachable: drop the message (the protocol will
                        // resynchronize when the peer returns).
                        continue;
                    }
                }
                let stream = conn.as_mut().expect("just ensured");
                if write_frame(stream, &payload).is_err() {
                    conn = None;
                    let _ = events_tx.send(TransportEvent::PeerDisconnected { peer });
                }
            }
            None => {
                // Idle: opportunistically (re)connect so the first real
                // send doesn't pay the dial latency.
                if conn.is_none() {
                    conn = try_connect(me, addr);
                }
            }
        }
    }
}

/// Writes one frame (computed header + payload) with vectored I/O: the
/// frame is never assembled in a contiguous buffer.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    let header = frame_header(&[payload]);
    let total = HEADER_LEN + payload.len();
    let mut written = 0;
    while written < total {
        let res = if written < HEADER_LEN {
            let iov = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            stream.write_vectored(&iov)
        } else {
            stream.write(&payload[written - HEADER_LEN..])
        };
        match res {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn try_connect(me: ServerId, addr: SocketAddr) -> Option<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(200)).ok()?;
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    stream.write_all(&me.0.to_le_bytes()).ok()?;
    Some(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use zab_core::{Epoch, Txn, Zxid};

    fn wait_msg(t: &Transport, timeout: Duration) -> Option<TransportEvent> {
        t.events().recv_timeout(timeout).ok()
    }

    fn mesh(n: u64) -> Vec<Transport> {
        // Bind ephemeral ports first, then wire the address book.
        let listeners: Vec<(ServerId, SocketAddr)> = (1..=n)
            .map(|i| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = l.local_addr().expect("addr");
                drop(l);
                (ServerId(i), addr)
            })
            .collect();
        let book: BTreeMap<ServerId, SocketAddr> = listeners.iter().copied().collect();
        listeners
            .iter()
            .map(|&(id, addr)| Transport::start(id, addr, book.clone()).expect("start"))
            .collect()
    }

    #[test]
    fn message_round_trip_between_two_nodes() {
        let mesh = mesh(2);
        let msg = Message::Ack { zxid: Zxid::new(Epoch(1), 7) };
        // Retry: the receiver's accept loop may still be settling.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0].send(ServerId(2), TransportMsg::Zab(msg.clone()));
            if let Some(TransportEvent::Message { from, msg: got }) =
                wait_msg(&mesh[1], Duration::from_millis(300))
            {
                assert_eq!(from, ServerId(1));
                match got {
                    TransportMsg::Zab(m) => assert_eq!(m, msg),
                    other => panic!("wrong channel: {other:?}"),
                }
                break;
            }
            assert!(Instant::now() < deadline, "message never arrived");
        }
    }

    #[test]
    fn election_channel_is_distinguished() {
        let mesh = mesh(2);
        let n = Notification {
            round: 3,
            state: zab_election::NodeState::Looking,
            vote: zab_election::Vote {
                peer_epoch: Epoch(1),
                last_zxid: Zxid::new(Epoch(1), 4),
                leader: ServerId(2),
            },
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[1].send(ServerId(1), TransportMsg::Election(n));
            if let Some(TransportEvent::Message { from, msg }) =
                wait_msg(&mesh[0], Duration::from_millis(300))
            {
                assert_eq!(from, ServerId(2));
                match msg {
                    TransportMsg::Election(got) => assert_eq!(got, n),
                    other => panic!("wrong channel: {other:?}"),
                }
                break;
            }
            assert!(Instant::now() < deadline, "notification never arrived");
        }
    }

    #[test]
    fn fifo_order_preserved_under_burst() {
        let mesh = mesh(2);
        let count = 500u32;
        // Wait until the link is up (first message observed), then burst.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            mesh[0]
                .send(ServerId(2), TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
            if wait_msg(&mesh[1], Duration::from_millis(200)).is_some() {
                break;
            }
            assert!(Instant::now() < deadline);
        }
        for c in 1..=count {
            let txn = Txn::new(Zxid::new(Epoch(1), c), c.to_le_bytes().to_vec());
            mesh[0].send(ServerId(2), TransportMsg::Zab(Message::Propose { txn }));
        }
        let mut seen = 0u32;
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen < count && Instant::now() < deadline {
            if let Some(TransportEvent::Message {
                msg: TransportMsg::Zab(Message::Propose { txn }),
                ..
            }) = wait_msg(&mesh[1], Duration::from_millis(500))
            {
                seen += 1;
                assert_eq!(txn.zxid.counter(), seen, "reordered at {seen}");
            }
        }
        assert_eq!(seen, count, "lost messages on a healthy connection");
    }

    #[test]
    fn send_to_unknown_peer_is_dropped_silently() {
        let mesh = mesh(1);
        mesh[0].send(ServerId(99), TransportMsg::Zab(Message::Ping { last_committed: Zxid::ZERO }));
        assert!(wait_msg(&mesh[0], Duration::from_millis(100)).is_none());
    }

    #[test]
    fn transport_msg_decode_rejects_garbage() {
        assert!(TransportMsg::decode(Bytes::new()).is_none());
        assert!(TransportMsg::decode(Bytes::from_static(&[7, 1, 2, 3])).is_none());
        assert!(TransportMsg::decode(Bytes::from_static(&[0, 0xFF])).is_none());
    }

    #[test]
    fn encode_round_trips_through_decode() {
        let txn = Txn::new(Zxid::new(Epoch(2), 9), Bytes::from(vec![0xAB; 4096]));
        let msg = TransportMsg::Zab(Message::Propose { txn });
        let encoded = msg.encode();
        match TransportMsg::decode(encoded).expect("decodes") {
            TransportMsg::Zab(Message::Propose { txn }) => {
                assert_eq!(txn.zxid, Zxid::new(Epoch(2), 9));
                assert_eq!(txn.data.as_ref(), &[0xAB; 4096][..]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
