//! The event-driven readiness side of the transport: **one** I/O thread
//! per node drives the listener, every outbound dial, every inbound frame
//! stream, and any outbound socket that went `WouldBlock` — via
//! nonblocking TCP and `poll(2)`.
//!
//! Sends do **not** pass through this thread. [`Outbound::offer`] runs on
//! the caller: it takes the peer's write lock, appends the refcounted
//! frame handle, and flushes straight into the socket. Only when the
//! socket can't take more (`WouldBlock`) does the caller poke the waker so
//! the loop arms `POLLOUT` and drains the residue as readiness arrives.
//!
//! ```text
//!  user threads                        the wire loop (1 thread)
//!  ────────────                        ───────────────────────────
//!  send()/broadcast()                  poll(waker, listener, conns…)
//!    │ lock peer ──► wbuf ──► socket     │
//!    │    (inline vectored flush)        ├─ accept new inbound conns
//!    └─ wake only on WouldBlock ────►    ├─ read frames → events_tx
//!                                        ├─ finish / schedule dials
//!                                        └─ drain blocked write buffers
//! ```
//!
//! On a loaded box this split matters: the hot path costs the sender one
//! lock and one vectored write — no cross-thread handoff, no wakeup, no
//! extra scheduler hop — while the loop's poll set stays parked unless
//! bytes actually arrive or a socket backs up. Adding a follower adds
//! **two fds** (one per direction), not two threads, so the per-node
//! thread count is flat in ensemble size.
//!
//! Liveness invariants:
//!
//! - a caller whose flush ended `blocked` (or `broken`) always wakes the
//!   loop, and the waker flag is disarmed before the pipe is drained, so
//!   a backed-up socket is never left unarmed longer than one poll;
//! - dials are scheduled by deadline ([`Backoff`] owns the cadence) and
//!   the poll timeout is clamped to the earliest deadline, so redials
//!   fire even when the mesh is completely idle;
//! - the loop owns the only `events_tx`, so once [`WireLoop::run`]
//!   returns — which [`crate::Transport`]'s `Drop` waits for — no event
//!   can ever be emitted again.

use crate::backoff::Backoff;
use crate::conn::{Frame, ReadBuf, WriteBuf};
use crate::poller::{
    connect_nonblocking, poll_fds, take_socket_error, ConnectProgress, PollFd, WakeRx, POLLIN,
    POLLOUT,
};
use crate::{TransportEvent, TransportMsg};
use bytes::Bytes;
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_metrics::{peer_metric, Counter, Gauge, Histogram, Registry};
use zab_trace::{Stage, Tracer};

/// Dial deadline (the old blocking transport's connect timeout).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(200);
/// Poll ceiling while nothing is scheduled; the waker is the real wakeup.
const IDLE_POLL: Duration = Duration::from_millis(500);
/// Socket reads per connection per wakeup. Level-triggered polling
/// re-reports leftover readability, so this bounds how long one noisy
/// peer can monopolize the loop without losing data.
const MAX_READS_PER_WAKE: usize = 8;

/// Outbound connection lifecycle. The stream lives inside the state so a
/// transition is also the close of the previous socket.
enum ConnState {
    /// Disconnected; the next dial may start at `next_attempt`.
    Idle { next_attempt: Instant },
    /// Nonblocking connect in flight; resolved by `POLLOUT` + `SO_ERROR`
    /// or the deadline.
    Connecting { stream: TcpStream, deadline: Instant },
    /// Established: frames flow. `broken` records a caller-side write
    /// error; the loop performs the actual teardown (events + redial).
    Up { stream: TcpStream, broken: bool },
}

/// Everything a sender needs, guarded by one lock.
struct OutInner {
    conn: ConnState,
    wbuf: WriteBuf,
}

/// What [`Outbound::offer`] concluded, from the caller's perspective.
pub(crate) enum Offer {
    /// Queued (and possibly already written in full).
    Sent,
    /// Queued, but the socket blocked or broke: wake the loop.
    SentNeedsWake,
    /// Peer disconnected — the frame was dropped, per the contract.
    Dropped,
}

/// One peer's outbound half, shared between sender threads and the wire
/// loop. Senders flush inline through [`Outbound::offer`]; the loop dials,
/// tears down, and drains whatever a sender left behind on `WouldBlock`.
/// The instrument names are unchanged from the thread-per-peer transport,
/// so dashboards and BENCH history stay comparable.
pub(crate) struct Outbound {
    inner: Mutex<OutInner>,
    /// Caller → loop: "lock me at the next sweep" (blocked or broken
    /// socket). Swapped off by the sweep, so a healthy peer costs the
    /// loop one relaxed load per cycle instead of a mutex acquisition.
    attention: AtomicBool,
    /// A flush left residue behind `WouldBlock`: the pollfd builder arms
    /// `POLLOUT` from this flag without taking the lock.
    armed_pollout: AtomicBool,
    /// Corked frames await [`Outbound::flush_pending`] — lets the sender
    /// skip the lock for peers it didn't touch this batch.
    has_pending: AtomicBool,
    bytes_out: Arc<Counter>,
    frames_out: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    batch_frames: Arc<Histogram>,
    batch_bytes: Arc<Histogram>,
}

impl Outbound {
    fn new(metrics: &Registry, id: ServerId) -> Outbound {
        Outbound {
            inner: Mutex::new(OutInner {
                conn: ConnState::Idle { next_attempt: Instant::now() },
                wbuf: WriteBuf::new(),
            }),
            attention: AtomicBool::new(false),
            armed_pollout: AtomicBool::new(false),
            has_pending: AtomicBool::new(false),
            bytes_out: metrics.counter(&peer_metric("transport.bytes_out", id.0)),
            frames_out: metrics.counter(&peer_metric("transport.frames_out", id.0)),
            queue_depth: metrics.gauge(&peer_metric("transport.send_queue_depth", id.0)),
            batch_frames: metrics.histogram(&peer_metric("transport.batch_frames", id.0)),
            batch_bytes: metrics.histogram(&peer_metric("transport.batch_bytes", id.0)),
        }
    }

    /// Queues a frame and flushes inline when the channel is up. Returns
    /// [`Offer::Dropped`] — without queueing — while disconnected: the
    /// protocol treats a down channel as broken and resynchronizes, so
    /// buffering for a dead peer would only deliver stale traffic. Frames
    /// queued while a dial is in flight are kept (they go out right
    /// behind the handshake), matching the old transport, where the dial
    /// happened synchronously under the first queued message.
    pub(crate) fn offer(&self, frame: Frame) -> Offer {
        let mut g = self.inner.lock();
        match g.conn {
            ConnState::Idle { .. } => Offer::Dropped,
            ConnState::Connecting { .. } => {
                g.wbuf.push_frame(frame);
                self.queue_depth.set(g.wbuf.queued_frames() as i64);
                Offer::Sent
            }
            ConnState::Up { .. } => {
                g.wbuf.push_frame(frame);
                if self.flush_locked(&mut g) {
                    Offer::Sent
                } else {
                    // Flag before the caller wakes the loop, so the sweep
                    // that the wake triggers is guaranteed to lock us.
                    self.attention.store(true, Ordering::Release);
                    Offer::SentNeedsWake
                }
            }
        }
    }

    /// Corks a frame: appends to the write buffer *without* flushing, so
    /// a batch of sends — every PROPOSE the leader emits while draining
    /// its event backlog, every ACK a follower owes for a burst — leaves
    /// in one vectored write when [`Outbound::flush_pending`] runs. This
    /// is what the old writer thread's channel backlog used to provide
    /// for free; here the batch boundary is explicit.
    pub(crate) fn queue(&self, frame: Frame) -> Offer {
        let mut g = self.inner.lock();
        if matches!(g.conn, ConnState::Idle { .. }) {
            return Offer::Dropped;
        }
        g.wbuf.push_frame(frame);
        self.queue_depth.set(g.wbuf.queued_frames() as i64);
        self.has_pending.store(true, Ordering::Release);
        Offer::Sent
    }

    /// Flushes whatever [`Outbound::queue`] corked since the last batch
    /// boundary. Returns `true` when the wire loop needs a wake (socket
    /// blocked or broke mid-flush). A peer with nothing pending costs
    /// one relaxed load — no lock.
    pub(crate) fn flush_pending(&self) -> bool {
        if !self.has_pending.swap(false, Ordering::AcqRel) {
            return false;
        }
        let mut g = self.inner.lock();
        if self.flush_locked(&mut g) {
            false
        } else {
            self.attention.store(true, Ordering::Release);
            true
        }
    }

    /// Vectored flush until clean, blocked, or broken; records the
    /// throughput instruments. Returns `false` when the loop's attention
    /// is needed (`POLLOUT` to arm, or a broken socket to tear down).
    fn flush_locked(&self, g: &mut OutInner) -> bool {
        let OutInner { conn, wbuf } = g;
        let ConnState::Up { stream, broken } = conn else { return true };
        if *broken {
            return false;
        }
        let mut blocked = false;
        let clean = loop {
            if wbuf.is_empty() {
                break true;
            }
            match wbuf.flush(stream) {
                Ok(f) if f.blocked => {
                    blocked = true;
                    break false;
                }
                Ok(f) => {
                    if f.frames > 0 {
                        self.frames_out.add(f.frames);
                        self.batch_frames.record(f.frames);
                    }
                    if f.bytes > 0 {
                        self.bytes_out.add(f.bytes);
                        self.batch_bytes.record(f.bytes);
                    }
                }
                Err(_) => {
                    // Teardown (events, redial schedule) belongs to the
                    // loop; just flag the carcass and get it looked at.
                    *broken = true;
                    break false;
                }
            }
        };
        self.armed_pollout.store(blocked, Ordering::Release);
        self.queue_depth.set(g.wbuf.queued_frames() as i64);
        clean
    }

    /// Marks a live channel broken from the caller side — used when a
    /// message cannot be framed at all (over `MAX_FRAME_LEN`): FIFO
    /// would be silently violated by skipping it, so the channel must
    /// break visibly instead. Returns `true` when the loop needs a wake
    /// to perform the teardown.
    pub(crate) fn poison(&self) -> bool {
        let mut g = self.inner.lock();
        if let ConnState::Up { broken, .. } = &mut g.conn {
            *broken = true;
            self.attention.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Closes any live socket and drops queued frames (final shutdown).
    pub(crate) fn shutdown(&self) {
        let mut g = self.inner.lock();
        g.conn = ConnState::Idle { next_attempt: Instant::now() };
        g.wbuf.clear();
        self.armed_pollout.store(false, Ordering::Release);
        self.queue_depth.set(0);
    }
}

/// The loop's lock-free shadow of a peer's [`ConnState`]. Every state
/// transition happens on the loop thread (callers only flag `broken`),
/// so the loop can keep this copy plus the fd and the next deadline in
/// plain fields — pollfd building and timeout math then never touch the
/// peer mutex.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    Connecting,
    Up,
}

/// Loop-private per-peer state: dial logic and its accounting. The
/// shared write half lives behind `out`.
struct Peer {
    id: ServerId,
    addr: SocketAddr,
    out: Arc<Outbound>,
    backoff: Backoff,
    handshake: Bytes,
    /// Loop-cached mirror of `out.inner.conn`'s variant.
    phase: Phase,
    /// Raw fd of the current socket; valid while `phase != Idle`.
    fd: i32,
    /// Next dial attempt (Idle) or connect deadline (Connecting).
    wake_at: Option<Instant>,
    connects: Arc<Counter>,
    connect_failures: Arc<Counter>,
    disconnects: Arc<Counter>,
}

impl Peer {
    /// Starts a dial if one is due. The write buffer restarts from just
    /// the handshake: anything queued against a previous incarnation of
    /// the channel died with it.
    fn maybe_dial(&mut self, now: Instant, events_tx: &Sender<TransportEvent>) {
        let out = Arc::clone(&self.out);
        let mut g = out.inner.lock();
        let ConnState::Idle { next_attempt } = g.conn else { return };
        if now < next_attempt {
            return;
        }
        match connect_nonblocking(&self.addr) {
            Ok(ConnectProgress::Connected(stream)) => {
                g.wbuf.clear();
                g.wbuf.push_raw(self.handshake.clone());
                self.establish(&mut g, stream);
            }
            Ok(ConnectProgress::InProgress(stream)) => {
                g.wbuf.clear();
                g.wbuf.push_raw(self.handshake.clone());
                let deadline = now + CONNECT_TIMEOUT;
                self.phase = Phase::Connecting;
                self.fd = stream.as_raw_fd();
                self.wake_at = Some(deadline);
                g.conn = ConnState::Connecting { stream, deadline };
            }
            Err(e) => self.fail_dial(&mut g, &e, events_tx),
        }
    }

    /// Resolves an in-flight dial after `POLLOUT` (or the deadline).
    fn finish_dial(&mut self, writable: bool, now: Instant, events_tx: &Sender<TransportEvent>) {
        let out = Arc::clone(&self.out);
        let mut g = out.inner.lock();
        let ConnState::Connecting { deadline, .. } = g.conn else { return };
        if writable {
            let ConnState::Connecting { stream, .. } =
                std::mem::replace(&mut g.conn, ConnState::Idle { next_attempt: now })
            else {
                unreachable!("matched Connecting above");
            };
            match take_socket_error(&stream) {
                Ok(()) => self.establish(&mut g, stream),
                Err(e) => self.fail_dial(&mut g, &e, events_tx),
            }
        } else if now >= deadline {
            // Drop the half-open stream, then schedule the re-dial.
            g.conn = ConnState::Idle { next_attempt: now };
            self.fail_dial(&mut g, &io::Error::from(io::ErrorKind::TimedOut), events_tx);
        }
    }

    fn establish(&mut self, g: &mut OutInner, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        self.backoff.reset();
        self.connects.inc();
        self.phase = Phase::Up;
        self.fd = stream.as_raw_fd();
        self.wake_at = None;
        g.conn = ConnState::Up { stream, broken: false };
        // Push the handshake (and anything queued behind it) out now:
        // with sweeps skipped for healthy peers, nobody else would. A
        // blocked or broken result flags attention so the next sweep
        // keeps draining / tears down.
        if !self.out.flush_locked(g) {
            self.out.attention.store(true, Ordering::Release);
        }
    }

    fn fail_dial(
        &mut self,
        g: &mut OutInner,
        error: &io::Error,
        events_tx: &Sender<TransportEvent>,
    ) {
        let attempt = self.backoff.attempt();
        g.wbuf.clear();
        self.out.queue_depth.set(0);
        self.out.armed_pollout.store(false, Ordering::Release);
        let next_attempt = Instant::now() + self.backoff.next_delay();
        self.phase = Phase::Idle;
        self.wake_at = Some(next_attempt);
        g.conn = ConnState::Idle { next_attempt };
        self.connect_failures.inc();
        let _ = events_tx.send(TransportEvent::ConnectFailed {
            peer: self.id,
            attempt,
            error: error.to_string(),
        });
    }

    /// A live connection broke (write error or read-side EOF/reset).
    /// One immediate re-dial, then backoff — as before the rewrite.
    fn disconnect(&mut self, g: &mut OutInner, events_tx: &Sender<TransportEvent>) {
        g.wbuf.clear();
        self.out.queue_depth.set(0);
        self.out.armed_pollout.store(false, Ordering::Release);
        let next_attempt = Instant::now();
        self.phase = Phase::Idle;
        self.wake_at = Some(next_attempt);
        g.conn = ConnState::Idle { next_attempt };
        self.disconnects.inc();
        let _ = events_tx.send(TransportEvent::PeerDisconnected { peer: self.id });
    }

    /// Tears down broken sockets, resolves dial timeouts, starts due
    /// dials, and drains whatever a blocked sender left queued. The
    /// steady-state path — peer up, nothing flagged — is two relaxed
    /// loads and no lock, so per-cycle cost doesn't grow with healthy
    /// ensemble size.
    fn sweep(&mut self, now: Instant, events_tx: &Sender<TransportEvent>) {
        if self.phase == Phase::Up {
            let flagged = self.out.attention.swap(false, Ordering::AcqRel)
                || self.out.armed_pollout.load(Ordering::Acquire);
            if !flagged {
                return;
            }
            let out = Arc::clone(&self.out);
            let mut g = out.inner.lock();
            match g.conn {
                ConnState::Up { broken: true, .. } => {
                    self.disconnect(&mut g, events_tx); // redial next cycle
                }
                ConnState::Up { .. } => {
                    if !g.wbuf.is_empty() && !out.flush_locked(&mut g) {
                        // Still blocked (POLLOUT stays armed) — unless
                        // the flush broke the socket, which we tear down.
                        if let ConnState::Up { broken: true, .. } = g.conn {
                            self.disconnect(&mut g, events_tx);
                        }
                    }
                }
                ConnState::Idle { .. } | ConnState::Connecting { .. } => {}
            }
            return;
        }
        if let Some(at) = self.wake_at {
            if now < at {
                return;
            }
        }
        // Connecting timeouts don't produce readiness, so sweep them
        // here (a no-op unless the deadline passed).
        self.finish_dial(false, now, events_tx);
        self.maybe_dial(now, events_tx);
    }

    /// Readiness interest for the pollfd set, from the loop-side cache —
    /// no lock. `POLLIN` on an outbound half detects peer-side close
    /// promptly (this direction of the mesh never carries inbound
    /// payload); `POLLOUT` only while a sender's flush got choked.
    fn interest(&self) -> Option<(i32, i16)> {
        match self.phase {
            Phase::Idle => None,
            Phase::Connecting => Some((self.fd, POLLOUT)),
            Phase::Up => {
                let mut ev = POLLIN;
                if self.out.armed_pollout.load(Ordering::Acquire) {
                    ev |= POLLOUT;
                }
                Some((self.fd, ev))
            }
        }
    }

    /// Handles readiness on the outbound socket.
    fn on_ready(&mut self, fd: PollFd, now: Instant, events_tx: &Sender<TransportEvent>) {
        enum Step {
            Dialing,
            Readable,
            Other,
        }
        let step = {
            let g = self.out.inner.lock();
            match g.conn {
                ConnState::Connecting { .. } => Step::Dialing,
                ConnState::Up { .. } if fd.readable() => Step::Readable,
                _ => Step::Other,
            }
        };
        match step {
            Step::Dialing => self.finish_dial(fd.writable(), now, events_tx),
            Step::Readable => {
                // Inbound data on the outbound half can only mean EOF or
                // reset. Read without the lock (reads and writes on one
                // socket don't race), then tear down if it's dead.
                let mut scratch = [0u8; 256];
                let out = Arc::clone(&self.out);
                let mut g = out.inner.lock();
                if let ConnState::Up { stream, .. } = &mut g.conn {
                    match stream.read(&mut scratch) {
                        Ok(0) => self.disconnect(&mut g, events_tx),
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => self.disconnect(&mut g, events_tx),
                    }
                }
            }
            // Writable-readiness work (dial completion aside) happens in
            // the sweep, which runs right after dispatch every cycle.
            Step::Other => {}
        }
    }
}

/// One accepted inbound connection: handshake, then a frame stream.
struct Inbound {
    stream: TcpStream,
    rbuf: ReadBuf,
    peer: Option<ServerId>,
    counters: Option<(Arc<Counter>, Arc<Counter>)>,
}

/// What reading an inbound connection concluded.
enum ReadOutcome {
    Open,
    Closed,
}

/// The readiness loop's owned state; [`WireLoop::run`] is the I/O
/// thread's body.
pub(crate) struct WireLoop {
    listener: TcpListener,
    peers: BTreeMap<ServerId, Peer>,
    inbound: Vec<Inbound>,
    wake_rx: WakeRx,
    events_tx: Sender<TransportEvent>,
    stop: Arc<AtomicBool>,
    metrics: Arc<Registry>,
    tracer: Tracer,
    fds: Vec<PollFd>,
    tokens: Vec<Token>,
    read_buf: Box<[u8; 64 * 1024]>,
}

#[derive(Clone, Copy)]
enum Token {
    Waker,
    Listener,
    Out(ServerId),
    In(usize),
}

impl WireLoop {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: ServerId,
        listener: TcpListener,
        book: &BTreeMap<ServerId, SocketAddr>,
        wake_rx: WakeRx,
        events_tx: Sender<TransportEvent>,
        stop: Arc<AtomicBool>,
        metrics: Arc<Registry>,
        tracer: Tracer,
    ) -> WireLoop {
        let handshake = Bytes::copy_from_slice(&me.0.to_le_bytes());
        let peers = book
            .iter()
            .filter(|&(&id, _)| id != me)
            .map(|(&id, &addr)| {
                let peer = Peer {
                    id,
                    addr,
                    out: Arc::new(Outbound::new(&metrics, id)),
                    backoff: Backoff::new(me, id),
                    handshake: handshake.clone(),
                    phase: Phase::Idle,
                    fd: -1,
                    wake_at: Some(Instant::now()),
                    connects: metrics.counter(&peer_metric("transport.connects", id.0)),
                    connect_failures: metrics
                        .counter(&peer_metric("transport.connect_failures", id.0)),
                    disconnects: metrics.counter(&peer_metric("transport.disconnects", id.0)),
                };
                (id, peer)
            })
            .collect();
        WireLoop {
            listener,
            peers,
            inbound: Vec::new(),
            wake_rx,
            events_tx,
            stop,
            metrics,
            tracer,
            fds: Vec::new(),
            tokens: Vec::new(),
            read_buf: Box::new([0u8; 64 * 1024]),
        }
    }

    /// The senders' handles to every peer's shared write half; cloned by
    /// [`crate::Transport`] before the loop thread is spawned.
    pub(crate) fn outbound_handles(&self) -> BTreeMap<ServerId, Arc<Outbound>> {
        self.peers.iter().map(|(&id, p)| (id, Arc::clone(&p.out))).collect()
    }

    pub(crate) fn run(mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            self.build_pollfds();
            let timeout = self.poll_timeout();
            if poll_fds(&mut self.fds, timeout).is_err() {
                // poll(2) itself failing (EINVAL/ENOMEM) is unrecoverable
                // for the loop; teardown closes every socket.
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            // Disarm-then-drain: a producer that saw the armed flag is
            // guaranteed its state change lands in this very cycle's sweep.
            self.wake_rx.drain();
            let now = Instant::now();
            self.dispatch_ready(now);
            for peer in self.peers.values_mut() {
                peer.sweep(now, &self.events_tx);
            }
        }
        // Teardown: close every socket *before* returning, so that after
        // `Transport::drop` joins this thread nothing lingers — senders
        // hold `Arc<Outbound>` handles, which would otherwise keep
        // streams alive past the loop's death.
        for peer in self.peers.values() {
            peer.out.shutdown();
        }
    }

    fn build_pollfds(&mut self) {
        self.fds.clear();
        self.tokens.clear();
        self.fds.push(PollFd::new(self.wake_rx.fd(), POLLIN));
        self.tokens.push(Token::Waker);
        self.fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        self.tokens.push(Token::Listener);
        for (&id, peer) in &self.peers {
            if let Some((fd, events)) = peer.interest() {
                self.fds.push(PollFd::new(fd, events));
                self.tokens.push(Token::Out(id));
            }
        }
        for (i, conn) in self.inbound.iter().enumerate() {
            self.fds.push(PollFd::new(conn.stream.as_raw_fd(), POLLIN));
            self.tokens.push(Token::In(i));
        }
    }

    /// Milliseconds until the earliest dial/connect deadline, capped at
    /// [`IDLE_POLL`] and rounded *up* so a sub-millisecond remainder
    /// cannot spin the loop hot. Reads only the loop-side deadline cache
    /// — when every peer is up there's nothing scheduled and the answer
    /// is `IDLE_POLL` without so much as a clock read.
    fn poll_timeout(&self) -> i32 {
        let mut earliest: Option<Instant> = None;
        for peer in self.peers.values() {
            if let Some(at) = peer.wake_at {
                earliest = Some(earliest.map_or(at, |e| e.min(at)));
            }
        }
        let wait = match earliest {
            None => IDLE_POLL,
            Some(at) => IDLE_POLL.min(at.saturating_duration_since(Instant::now())),
        };
        if wait.is_zero() {
            0
        } else {
            (wait.as_millis() as i32).max(1)
        }
    }

    fn dispatch_ready(&mut self, now: Instant) {
        // Take the vectors out of `self` so the iteration doesn't hold a
        // borrow across the `&mut self` handlers — no per-cycle allocation.
        let fds = std::mem::take(&mut self.fds);
        let tokens = std::mem::take(&mut self.tokens);
        let mut dead_inbound: Vec<usize> = Vec::new();
        for (&token, &fd) in tokens.iter().zip(&fds) {
            if fd.revents == 0 {
                continue;
            }
            match token {
                Token::Waker => {} // drained every iteration already
                Token::Listener => self.accept_all(),
                Token::Out(id) => {
                    if let Some(peer) = self.peers.get_mut(&id) {
                        peer.on_ready(fd, now, &self.events_tx);
                    }
                }
                Token::In(i) => {
                    if matches!(self.read_inbound(i), ReadOutcome::Closed) {
                        dead_inbound.push(i);
                    }
                }
            }
        }
        self.fds = fds;
        self.tokens = tokens;
        // Remove dead inbound connections back-to-front so the indices
        // collected above stay valid.
        dead_inbound.sort_unstable();
        for i in dead_inbound.into_iter().rev() {
            let conn = self.inbound.swap_remove(i);
            if let Some(peer) = conn.peer {
                let _ = self.events_tx.send(TransportEvent::PeerDisconnected { peer });
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.inbound.push(Inbound {
                        stream,
                        rbuf: ReadBuf::new(),
                        peer: None,
                        counters: None,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (e.g. the peer reset before
                // we got to it): keep serving the loop.
                Err(_) => return,
            }
        }
    }

    /// Reads one inbound connection until it blocks, closes, or the
    /// per-wake budget runs out; decodes and publishes complete frames.
    fn read_inbound(&mut self, i: usize) -> ReadOutcome {
        let conn = &mut self.inbound[i];
        let buf = &mut self.read_buf[..];
        for _ in 0..MAX_READS_PER_WAKE {
            match conn.stream.read(buf) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => {
                    if let Some(raw) = conn.rbuf.ingest(&buf[..n]) {
                        let peer = ServerId(raw);
                        conn.peer = Some(peer);
                        conn.counters = Some((
                            self.metrics.counter(&peer_metric("transport.bytes_in", raw)),
                            self.metrics.counter(&peer_metric("transport.frames_in", raw)),
                        ));
                    }
                    if let (Some(peer), Some((bytes_in, frames_in))) = (conn.peer, &conn.counters) {
                        bytes_in.add(n as u64);
                        loop {
                            match conn.rbuf.decoder.next_frame() {
                                Ok(Some(payload)) => {
                                    frames_in.inc();
                                    if let Some(msg) = TransportMsg::decode(payload) {
                                        if let Some(zxid) = msg.traced_zxid() {
                                            self.tracer.instant(Stage::WireIn, zxid, peer.0);
                                        }
                                        let _ = self
                                            .events_tx
                                            .send(TransportEvent::Message { from: peer, msg });
                                    }
                                }
                                Ok(None) => break,
                                // Corrupt stream: the channel is dead.
                                Err(_) => return ReadOutcome::Closed,
                            }
                        }
                    }
                    // A short read means the socket is drained: skip the
                    // syscall that would only return `WouldBlock`. Level-
                    // triggered poll re-reports anything that races in.
                    if n < buf.len() {
                        return ReadOutcome::Open;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Closed,
            }
        }
        // Budget exhausted: level-triggered poll re-reports the rest.
        ReadOutcome::Open
    }
}
