//! Readiness primitives for the wire loop, hand-rolled over raw POSIX
//! syscalls (the workspace builds offline with no registry access, so
//! there is no `libc`/`mio` to lean on — see `vendor/README.md`).
//!
//! Three things live here:
//!
//! - [`poll_fds`]: a thin, EINTR-retrying wrapper over `poll(2)`,
//! - [`connect_nonblocking`] / [`take_socket_error`]: the classic
//!   nonblocking-connect dance (`socket` → `connect` → `EINPROGRESS` →
//!   wait for `POLLOUT` → read `SO_ERROR`),
//! - [`Waker`] / [`WakeRx`]: a self-pipe (a nonblocking `UnixStream`
//!   pair) that user threads poke to pull the loop out of `poll(2)`,
//!   with an armed flag so a saturating producer pays one `write(2)`
//!   per loop wakeup rather than one per message.
//!
//! The numeric constants are Linux values; the crate's readiness loop is
//! Linux-only in the same way the CI and deployment targets are.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// `poll(2)` readiness bits.
pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;
pub(crate) const POLLERR: i16 = 0x008;
pub(crate) const POLLHUP: i16 = 0x010;

const AF_INET: i32 = 2;
const AF_INET6: i32 = 10;
const SOCK_STREAM: i32 = 1;
const SOL_SOCKET: i32 = 1;
const SO_ERROR: i32 = 4;
const EINPROGRESS: i32 = 115;

/// `struct pollfd` (identical layout on every Linux ABI).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub(crate) struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub(crate) fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Readable, or in an error/hangup state that a read will surface.
    pub(crate) fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// Writable, or in an error/hangup state that a write will surface.
    pub(crate) fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
    fn getsockopt(fd: i32, level: i32, name: i32, val: *mut u8, len: *mut u32) -> i32;
}

/// Blocks until some fd in `fds` is ready or `timeout_ms` elapses
/// (`-1` = forever). Retries `EINTR` internally.
///
/// # Errors
///
/// Propagates any `poll(2)` failure other than `EINTR`.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// Result of initiating a nonblocking dial.
pub(crate) enum ConnectProgress {
    /// Connected synchronously (possible on loopback).
    Connected(TcpStream),
    /// `EINPROGRESS`: poll the socket for `POLLOUT`, then check
    /// [`take_socket_error`] to learn the outcome.
    InProgress(TcpStream),
}

/// Encodes `addr` as a `sockaddr_in`/`sockaddr_in6` byte image.
fn sockaddr_bytes(addr: &SocketAddr) -> (i32, [u8; 28], u32) {
    let mut b = [0u8; 28];
    match addr {
        SocketAddr::V4(a) => {
            b[..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            b[2..4].copy_from_slice(&a.port().to_be_bytes());
            b[4..8].copy_from_slice(&a.ip().octets());
            (AF_INET, b, 16)
        }
        SocketAddr::V6(a) => {
            b[..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            b[2..4].copy_from_slice(&a.port().to_be_bytes());
            b[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
            b[8..24].copy_from_slice(&a.ip().octets());
            b[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
            (AF_INET6, b, 28)
        }
    }
}

/// Starts a nonblocking TCP dial to `addr`. Never blocks: the returned
/// stream is already in nonblocking mode.
///
/// # Errors
///
/// Fails if the socket cannot be created or the dial is rejected
/// synchronously (anything but `EINPROGRESS`).
pub(crate) fn connect_nonblocking(addr: &SocketAddr) -> io::Result<ConnectProgress> {
    let (family, raw, len) = sockaddr_bytes(addr);
    let fd = unsafe { socket(family, SOCK_STREAM, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Wrap immediately: every error path below closes the fd via Drop.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    stream.set_nonblocking(true)?;
    let rc = unsafe { connect(fd, raw.as_ptr(), len) };
    if rc == 0 {
        return Ok(ConnectProgress::Connected(stream));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        Ok(ConnectProgress::InProgress(stream))
    } else {
        Err(err)
    }
}

/// Reads and clears the socket's pending error (`SO_ERROR`) — the
/// completion status of a nonblocking connect once `POLLOUT` fires.
///
/// # Errors
///
/// Returns the pending socket error, if any.
pub(crate) fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
    let mut err: i32 = 0;
    let mut len: u32 = std::mem::size_of::<i32>() as u32;
    let rc = unsafe {
        getsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_ERROR,
            std::ptr::addr_of_mut!(err).cast::<u8>(),
            &mut len,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    if err != 0 {
        return Err(io::Error::from_raw_os_error(err));
    }
    Ok(())
}

/// The write half of the loop's self-pipe, shared by every user thread
/// that enqueues commands ([`crate::Transport::send`] and friends) plus
/// the teardown path.
#[derive(Clone)]
pub(crate) struct Waker {
    inner: Arc<WakerInner>,
}

struct WakerInner {
    tx: UnixStream,
    /// True while a wake byte is already in flight: consecutive wakes
    /// between two loop iterations collapse into one `write(2)`.
    armed: AtomicBool,
}

/// The read half, owned by the wire loop.
pub(crate) struct WakeRx {
    rx: UnixStream,
    inner: Arc<WakerInner>,
}

/// Builds a connected waker pair.
///
/// # Errors
///
/// Fails if the socket pair cannot be created.
pub(crate) fn waker() -> io::Result<(Waker, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    let inner = Arc::new(WakerInner { tx, armed: AtomicBool::new(false) });
    Ok((Waker { inner: Arc::clone(&inner) }, WakeRx { rx, inner }))
}

impl Waker {
    /// Pokes the loop. Cheap when a poke is already pending (one atomic
    /// swap, no syscall). A full pipe is fine too: the loop is about to
    /// wake anyway.
    pub(crate) fn wake(&self) {
        if !self.inner.armed.swap(true, Ordering::SeqCst) {
            let _ = (&self.inner.tx).write(&[1u8]);
        }
    }
}

impl WakeRx {
    pub(crate) fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Disarms and drains the pipe. Called once per loop iteration
    /// *before* the command queue is drained, so a producer that found
    /// the flag armed is guaranteed its command is seen by the drain
    /// that follows this call.
    pub(crate) fn drain(&mut self) {
        self.inner.armed.store(false, Ordering::SeqCst);
        let mut buf = [0u8; 64];
        while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn nonblocking_connect_completes_against_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stream = match connect_nonblocking(&addr).expect("dial") {
            ConnectProgress::Connected(s) => s,
            ConnectProgress::InProgress(s) => {
                let mut fds = [PollFd::new(s.as_raw_fd(), POLLOUT)];
                poll_fds(&mut fds, 2_000).expect("poll");
                assert!(fds[0].writable(), "connect never completed");
                take_socket_error(&s).expect("SO_ERROR clean");
                s
            }
        };
        assert_eq!(stream.peer_addr().expect("peer").port(), addr.port());
        let (accepted, _) = listener.accept().expect("accept");
        assert_eq!(accepted.peer_addr().expect("peer"), stream.local_addr().expect("local"));
    }

    #[test]
    fn refused_dial_surfaces_an_error() {
        // Reserve a port, then close it so nothing listens there.
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        drop(l);
        match connect_nonblocking(&addr) {
            Err(_) => {} // synchronous refusal
            Ok(ConnectProgress::Connected(_)) => panic!("connected to a closed port"),
            Ok(ConnectProgress::InProgress(s)) => {
                let mut fds = [PollFd::new(s.as_raw_fd(), POLLOUT)];
                poll_fds(&mut fds, 2_000).expect("poll");
                assert!(take_socket_error(&s).is_err(), "SO_ERROR should report the refusal");
            }
        }
    }

    #[test]
    fn waker_wakes_poll_and_drain_rearms() {
        let (wake, mut rx) = waker().expect("waker");
        wake.wake();
        wake.wake(); // second poke collapses into the first
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        poll_fds(&mut fds, 2_000).expect("poll");
        assert!(fds[0].readable(), "wake byte never arrived");
        rx.drain();
        // Drained: an immediate poll must time out…
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        poll_fds(&mut fds, 0).expect("poll");
        assert!(!fds[0].readable(), "pipe not drained");
        // …and the next wake must land again.
        wake.wake();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        poll_fds(&mut fds, 2_000).expect("poll");
        assert!(fds[0].readable(), "waker failed to re-arm");
    }
}
