//! Per-connection buffering: encode-once frames, write queues with
//! partial-write cursors, and the vectored flush policy.
//!
//! # Buffer ownership
//!
//! A [`Frame`] is the unit the rest of the system hands the transport:
//! the payload is a refcounted [`Bytes`] handle and the 8-byte header
//! (length + CRC32C) is computed exactly once, at construction. A leader
//! fanning a PROPOSE out to N−1 followers clones the `Frame` — 8 copied
//! header bytes plus a refcount bump per peer; the payload bytes and the
//! checksum are never touched again.
//!
//! # Flush policy
//!
//! [`WriteBuf::flush`] issues **one** vectored write covering at most
//! [`MAX_BATCH_FRAMES`] frames / [`MAX_BATCH_BYTES`] bytes (the
//! coalescing caps the blocking transport used per batch, now the
//! readiness loop's per-syscall policy). Headers and payloads are
//! interleaved straight into the iovec, so no frame is ever assembled in
//! a contiguous buffer. A short write leaves a cursor into the front
//! chunk; the next flush resumes mid-frame, byte-exactly.

use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use zab_wire::frame::{frame_header, FrameDecoder, HEADER_LEN};

/// Most frames one coalesced vectored write covers.
pub(crate) const MAX_BATCH_FRAMES: usize = 64;
/// Soft byte cap per coalesced write: chunk gathering stops once the
/// batch crosses this (a single larger frame still goes out whole).
pub(crate) const MAX_BATCH_BYTES: usize = 256 * 1024;

/// A wire frame encoded exactly once. Cloning is O(1) in the payload
/// size: fan-out shares the encoding *and* the checksum.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub header: [u8; HEADER_LEN],
    pub payload: Bytes,
}

impl Frame {
    /// `None` when the payload cannot be framed at all (over
    /// [`zab_wire::frame::MAX_FRAME_LEN`]) — the caller decides whether
    /// that's a dropped send or a poisoned channel; it must not be a
    /// panic on a replica's event-loop thread.
    pub(crate) fn try_new(payload: Bytes) -> Option<Frame> {
        if payload.len() > zab_wire::frame::MAX_FRAME_LEN {
            return None;
        }
        Some(Frame { header: frame_header(&[&payload]), payload })
    }

    pub(crate) fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

/// One queued write unit: raw preamble bytes (the connection handshake)
/// or a framed message.
#[derive(Debug)]
enum Chunk {
    Raw(Bytes),
    Frame(Frame),
}

impl Chunk {
    fn len(&self) -> usize {
        match self {
            Chunk::Raw(b) => b.len(),
            Chunk::Frame(f) => f.wire_len(),
        }
    }

    /// The chunk's bytes from `offset` on, as up to two iovec slices.
    fn slices<'a>(&'a self, offset: usize, out: &mut Vec<IoSlice<'a>>) {
        match self {
            Chunk::Raw(b) => {
                if offset < b.len() {
                    out.push(IoSlice::new(&b[offset..]));
                }
            }
            Chunk::Frame(f) => {
                if offset < HEADER_LEN {
                    out.push(IoSlice::new(&f.header[offset..]));
                    if !f.payload.is_empty() {
                        out.push(IoSlice::new(&f.payload));
                    }
                } else if offset < f.wire_len() {
                    out.push(IoSlice::new(&f.payload[offset - HEADER_LEN..]));
                }
            }
        }
    }
}

/// What one [`WriteBuf::flush`] call accomplished.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Flush {
    /// Wire bytes written (headers + payloads + raw preamble).
    pub bytes: u64,
    /// Frames *completed* (their last byte written) by this call.
    pub frames: u64,
    /// The socket refused more data (`EWOULDBLOCK`): arm `POLLOUT` and
    /// retry when the readiness loop says so.
    pub blocked: bool,
}

/// A per-connection outbound queue of refcounted frame handles with a
/// partial-write cursor.
#[derive(Debug, Default)]
pub(crate) struct WriteBuf {
    chunks: VecDeque<Chunk>,
    /// Bytes of the front chunk already written.
    cursor: usize,
    /// Total unwritten bytes across all chunks.
    queued_bytes: usize,
    /// Queued not-yet-completed frames (raw chunks excluded).
    queued_frames: usize,
}

impl WriteBuf {
    pub(crate) fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queues raw preamble bytes (the 8-byte identity handshake).
    pub(crate) fn push_raw(&mut self, bytes: Bytes) {
        if bytes.is_empty() {
            return;
        }
        self.queued_bytes += bytes.len();
        self.chunks.push_back(Chunk::Raw(bytes));
    }

    /// Queues a frame handle (no bytes are copied).
    pub(crate) fn push_frame(&mut self, frame: Frame) {
        self.queued_bytes += frame.wire_len();
        self.queued_frames += 1;
        self.chunks.push_back(Chunk::Frame(frame));
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    pub(crate) fn queued_frames(&self) -> usize {
        self.queued_frames
    }

    /// Drops everything queued (connection teardown: undelivered frames
    /// die with their channel, per the transport contract).
    pub(crate) fn clear(&mut self) {
        self.chunks.clear();
        self.cursor = 0;
        self.queued_bytes = 0;
        self.queued_frames = 0;
    }

    /// One vectored write against `w`, honoring the batch caps. Call in
    /// a loop until `blocked` (arm `POLLOUT`) or [`WriteBuf::is_empty`].
    ///
    /// # Errors
    ///
    /// Any write error except `WouldBlock`/`Interrupted` — the
    /// connection is dead (a zero-length write is reported as
    /// [`io::ErrorKind::WriteZero`]).
    pub(crate) fn flush(&mut self, w: &mut impl Write) -> io::Result<Flush> {
        if self.chunks.is_empty() {
            return Ok(Flush::default());
        }
        let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(2 * MAX_BATCH_FRAMES);
        let mut frames = 0usize;
        let mut bytes = 0usize;
        for (i, chunk) in self.chunks.iter().enumerate() {
            // Always include the front chunk (resuming its cursor); stop
            // growing the batch once either cap is crossed.
            if i > 0 && (frames >= MAX_BATCH_FRAMES || bytes >= MAX_BATCH_BYTES) {
                break;
            }
            let offset = if i == 0 { self.cursor } else { 0 };
            chunk.slices(offset, &mut iov);
            bytes += chunk.len() - offset;
            if matches!(chunk, Chunk::Frame(_)) {
                frames += 1;
            }
        }
        loop {
            match w.write_vectored(&iov) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => return Ok(self.advance(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(Flush { bytes: 0, frames: 0, blocked: true });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Consumes `n` written bytes from the front, popping completed
    /// chunks and leaving the cursor mid-chunk otherwise.
    fn advance(&mut self, written: usize) -> Flush {
        let mut n = written;
        self.queued_bytes -= n;
        let mut frames = 0u64;
        while n > 0 {
            let front = self.chunks.front().expect("advance past queued bytes");
            let remaining = front.len() - self.cursor;
            if n >= remaining {
                n -= remaining;
                if matches!(front, Chunk::Frame(_)) {
                    frames += 1;
                    self.queued_frames -= 1;
                }
                self.chunks.pop_front();
                self.cursor = 0;
            } else {
                self.cursor += n;
                n = 0;
            }
        }
        Flush { bytes: written as u64, frames, blocked: false }
    }
}

/// Read-side state of one connection: the incremental frame decoder plus
/// the 8-byte identity handshake that precedes the frame stream.
#[derive(Debug)]
pub(crate) struct ReadBuf {
    handshake: [u8; 8],
    handshake_len: usize,
    pub decoder: FrameDecoder,
}

impl ReadBuf {
    pub(crate) fn new() -> ReadBuf {
        ReadBuf { handshake: [0; 8], handshake_len: 0, decoder: FrameDecoder::new() }
    }

    /// Feeds raw stream bytes. Returns the peer id if this chunk just
    /// completed the handshake; bytes beyond it go to the frame decoder.
    pub(crate) fn ingest(&mut self, mut chunk: &[u8]) -> Option<u64> {
        let mut completed = None;
        if self.handshake_len < 8 {
            let take = chunk.len().min(8 - self.handshake_len);
            self.handshake[self.handshake_len..self.handshake_len + take]
                .copy_from_slice(&chunk[..take]);
            self.handshake_len += take;
            chunk = &chunk[take..];
            if self.handshake_len == 8 {
                completed = Some(u64::from_le_bytes(self.handshake));
            }
        }
        if !chunk.is_empty() {
            self.decoder.extend(chunk);
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A writer that accepts at most the scripted number of bytes per
    /// call, then reports `WouldBlock` — the fragmentation adversary.
    struct ChokedWriter {
        accepted: Vec<u8>,
        script: VecDeque<usize>,
    }

    impl Write for ChokedWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let Some(cap) = self.script.pop_front() else {
                return Err(io::ErrorKind::WouldBlock.into());
            };
            let n = cap.min(buf.len());
            if n == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let Some(cap) = self.script.pop_front() else {
                return Err(io::ErrorKind::WouldBlock.into());
            };
            if cap == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let mut left = cap;
            let mut total = 0;
            for b in bufs {
                let n = left.min(b.len());
                self.accepted.extend_from_slice(&b[..n]);
                total += n;
                left -= n;
                if left == 0 {
                    break;
                }
            }
            Ok(total)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drain(buf: &mut WriteBuf, w: &mut ChokedWriter) {
        while !buf.is_empty() {
            let f = buf.flush(w).expect("flush");
            if (f.blocked || f.bytes == 0) && w.script.is_empty() {
                // Blocked with an exhausted script: top it up so the
                // drain terminates (models the socket becoming writable).
                w.script.push_back(usize::MAX);
            }
        }
    }

    #[test]
    fn frame_header_is_computed_once_and_shared() {
        let f = Frame::try_new(Bytes::from_static(b"shared payload")).unwrap();
        let g = f.clone();
        assert_eq!(f.header, g.header);
        // The clone's payload is the same allocation, not a copy.
        assert_eq!(f.payload.as_ptr(), g.payload.as_ptr());
    }

    #[test]
    fn empty_payload_frame_round_trips() {
        let mut buf = WriteBuf::new();
        buf.push_frame(Frame::try_new(Bytes::new()).unwrap());
        let mut w = ChokedWriter { accepted: Vec::new(), script: VecDeque::from([usize::MAX]) };
        drain(&mut buf, &mut w);
        let mut dec = FrameDecoder::new();
        dec.extend(&w.accepted);
        assert_eq!(dec.next_frame().expect("frame").as_deref(), Some(&b""[..]));
    }

    #[test]
    fn batch_caps_bound_one_flush() {
        let mut buf = WriteBuf::new();
        for i in 0..(MAX_BATCH_FRAMES + 10) {
            buf.push_frame(Frame::try_new(Bytes::from(vec![i as u8; 16])).unwrap());
        }
        let mut w =
            ChokedWriter { accepted: Vec::new(), script: VecDeque::from([usize::MAX, usize::MAX]) };
        let first = buf.flush(&mut w).expect("flush");
        assert_eq!(first.frames as usize, MAX_BATCH_FRAMES, "frame cap ignored");
        let second = buf.flush(&mut w).expect("flush");
        assert_eq!(second.frames, 10, "remainder not flushed");
        assert!(buf.is_empty());
    }

    #[test]
    fn clear_drops_queued_frames() {
        let mut buf = WriteBuf::new();
        buf.push_raw(Bytes::from_static(&[9; 8]));
        buf.push_frame(Frame::try_new(Bytes::from_static(b"doomed")).unwrap());
        assert_eq!(buf.queued_frames(), 1);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.queued_frames(), 0);
    }

    #[test]
    fn read_buf_splits_handshake_from_frames() {
        let mut rb = ReadBuf::new();
        let id = 0xAB0u64;
        let mut wire = id.to_le_bytes().to_vec();
        wire.extend(zab_wire::frame::encode_frame(b"hello"));
        // Deliver byte-by-byte: the handshake must complete exactly once.
        let mut seen = None;
        for &b in &wire {
            if let Some(peer) = rb.ingest(&[b]) {
                assert!(seen.is_none(), "handshake completed twice");
                seen = Some(peer);
            }
        }
        assert_eq!(seen, Some(id));
        assert_eq!(rb.decoder.next_frame().expect("frame").as_deref(), Some(&b"hello"[..]));
    }

    proptest! {
        /// Satellite: frames fragmented by arbitrary `WouldBlock`
        /// boundaries on the write side decode byte-identically to
        /// single-write frames (the mirror of the coalescing proptest on
        /// the read side). The choke script forces partial writes at
        /// arbitrary byte positions — mid-header, mid-payload, across
        /// frame boundaries — and the cursor must resume every one.
        #[test]
        fn partial_writes_decode_byte_identically(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..300), 1..40),
            script in proptest::collection::vec(0usize..90, 0..200),
            preamble in any::<u64>(),
        ) {
            let mut buf = WriteBuf::new();
            buf.push_raw(Bytes::copy_from_slice(&preamble.to_le_bytes()));
            for p in &payloads {
                buf.push_frame(Frame::try_new(Bytes::copy_from_slice(p)).unwrap());
            }
            let mut w = ChokedWriter { accepted: Vec::new(), script: script.into() };
            let mut completed = 0u64;
            while !buf.is_empty() {
                let f = buf.flush(&mut w).expect("flush never errors here");
                completed += f.frames;
                if (f.blocked || f.bytes == 0) && w.script.is_empty() {
                    w.script.push_back(usize::MAX); // socket drains
                }
            }
            prop_assert_eq!(completed as usize, payloads.len());

            // The byte stream the "socket" saw must be the reference
            // encoding: handshake, then every frame, byte-identical.
            let mut reference = preamble.to_le_bytes().to_vec();
            for p in &payloads {
                zab_wire::frame::encode_frame_into(&mut reference, &[p]);
            }
            prop_assert_eq!(&w.accepted, &reference);

            // And it must decode back to exactly the queued payloads.
            let mut rb = ReadBuf::new();
            let mut got_peer = None;
            for chunk in w.accepted.chunks(7) {
                if let Some(peer) = rb.ingest(chunk) {
                    got_peer = Some(peer);
                }
            }
            prop_assert_eq!(got_peer, Some(preamble));
            for p in &payloads {
                let frame = rb.decoder.next_frame().expect("intact").expect("complete");
                prop_assert_eq!(&frame[..], &p[..]);
            }
            prop_assert!(rb.decoder.next_frame().expect("intact").is_none());
        }
    }
}
