//! Capped exponential backoff with deterministic jitter for re-dials.

use std::time::Duration;
use zab_core::ServerId;

/// First reconnect delay after a dial failure.
pub(crate) const CONNECT_BASE_DELAY_MS: u64 = 10;
/// Backoff ceiling.
pub(crate) const CONNECT_MAX_DELAY_MS: u64 = 1_000;

/// Capped exponential backoff with *deterministic* jitter: delays grow
/// `base·2^attempt` up to the cap, each drawn uniformly from
/// `[d/2, d]` by a splitmix64 stream seeded from the `(me, peer)` pair.
/// Jitter decorrelates peers re-dialing a rebooted node (no thundering
/// herd) while staying replayable: the same pair always produces the
/// same delay sequence.
#[derive(Debug)]
pub(crate) struct Backoff {
    state: u64,
    attempt: u32,
}

impl Backoff {
    pub(crate) fn new(me: ServerId, peer: ServerId) -> Backoff {
        Backoff {
            state: me.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ peer.0.rotate_left(32)
                ^ 0xA076_1D64_78BD_642F,
            attempt: 0,
        }
    }

    fn splitmix(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Consecutive failures so far.
    pub(crate) fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Delay before the next dial; advances the attempt counter.
    pub(crate) fn next_delay(&mut self) -> Duration {
        let exp = CONNECT_BASE_DELAY_MS << self.attempt.min(16);
        let capped = exp.min(CONNECT_MAX_DELAY_MS);
        self.attempt = self.attempt.saturating_add(1);
        let half = capped / 2;
        let jitter = self.splitmix() % (capped - half + 1);
        Duration::from_millis(half + jitter)
    }

    /// Back to the base delay (called on successful connect).
    pub(crate) fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_to_cap_with_bounded_jitter() {
        let mut b = Backoff::new(ServerId(1), ServerId(2));
        let mut prev_floor = 0;
        for attempt in 0..20u32 {
            assert_eq!(b.attempt(), attempt);
            let exp = (CONNECT_BASE_DELAY_MS << attempt.min(16)).min(CONNECT_MAX_DELAY_MS);
            let d = b.next_delay().as_millis() as u64;
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d}ms outside [{}, {exp}]",
                exp / 2
            );
            assert!(exp / 2 >= prev_floor, "backoff floor regressed");
            prev_floor = exp / 2;
        }
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert!(b.next_delay() <= Duration::from_millis(CONNECT_BASE_DELAY_MS));
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_pair_and_differs_across_pairs() {
        let seq = |me, peer| {
            let mut b = Backoff::new(ServerId(me), ServerId(peer));
            (0..10).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1, 2), seq(1, 2), "same pair must replay identically");
        assert_ne!(seq(1, 2), seq(2, 1), "distinct pairs should decorrelate");
        assert_ne!(seq(1, 2), seq(1, 3), "distinct pairs should decorrelate");
    }
}
