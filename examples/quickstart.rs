//! Quickstart: a 3-replica Zab ensemble in one process, over real TCP.
//!
//! Boots three replicas on localhost, waits for leader election and
//! establishment, broadcasts a few state changes, shows that every replica
//! delivers them in the same order, then kills the leader and demonstrates
//! failover.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role};

fn main() {
    // 1. An address book: three replicas on ephemeral localhost ports.
    let book: BTreeMap<ServerId, SocketAddr> = (1..=3)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect();

    // 2. Boot the replicas (in-memory storage; pass a data dir for files).
    let mut replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            (id, Replica::start(cfg, BytesApp::new()).expect("boot replica"))
        })
        .collect();

    // 3. Wait for Phase 0–2: election + synchronization.
    let leader = wait_for_leader(&replicas).expect("no leader elected");
    println!("established leader: {leader}");

    // 4. Broadcast incremental state changes through the primary.
    for word in ["alpha", "beta", "gamma", "delta"] {
        replicas[&leader].submit(word.as_bytes().to_vec());
    }

    // 5. Every replica delivers the same sequence.
    for (&id, replica) in &replicas {
        let delivered = drain(replica, 4);
        let words: Vec<String> =
            delivered.iter().map(|t| String::from_utf8_lossy(&t.data).into_owned()).collect();
        println!("{id} delivered: {words:?}");
        assert_eq!(words, ["alpha", "beta", "gamma", "delta"]);
    }

    // 6. Kill the leader; the survivors elect a new one and keep serving.
    println!("crashing {leader}...");
    replicas.remove(&leader).expect("leader exists").shutdown();
    let new_leader = wait_for_leader(&replicas).expect("failover failed");
    println!("failover complete, new leader: {new_leader}");

    replicas[&new_leader].submit(b"epsilon".to_vec());
    let other = replicas.keys().copied().find(|&id| id != new_leader).expect("survivor");
    let more = drain(&replicas[&other], 1);
    println!("{other} delivered after failover: {:?}", String::from_utf8_lossy(&more[0].data));
    println!("quickstart OK");
}

fn wait_for_leader(replicas: &BTreeMap<ServerId, Replica<BytesApp>>) -> Option<ServerId> {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        for (&id, r) in replicas {
            if matches!(r.role(), Role::Leading { established: true, .. }) {
                return Some(id);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

fn drain(replica: &Replica<BytesApp>, want: usize) -> Vec<zab_core::Txn> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = Vec::new();
    while got.len() < want && Instant::now() < deadline {
        if let Ok(NodeEvent::Delivered(txn)) =
            replica.events().recv_timeout(Duration::from_millis(100))
        {
            got.push(txn);
        }
    }
    assert_eq!(got.len(), want, "timed out waiting for deliveries");
    got
}
