//! Fault-injection walkthrough on the deterministic simulator.
//!
//! Replays, from a fixed seed, the canonical availability story of a
//! majority-quorum system: a 5-server ensemble keeps serving while a
//! minority (including the leader!) is partitioned away, the isolated
//! ex-leader abdicates, and after healing everyone converges to one
//! history — verified by the PO-atomic-broadcast checker.
//!
//! Run with: `cargo run --example partition_sim`

use zab_simnet::{ClosedLoopSpec, SimBuilder};

const SEC: u64 = 1_000_000;

fn main() {
    let mut sim = SimBuilder::new(5).seed(2024).timeouts_ms(200, 200, 25).build();

    let leader = sim.run_until_leader(10 * SEC).expect("initial election");
    println!("[t={:>6} ms] leader elected: {leader}", sim.now_us() / 1000);

    sim.install_closed_loop(ClosedLoopSpec {
        clients: 4,
        payload_size: 128,
        total_ops: 2_000,
        retry_delay_us: 5_000,
        op_timeout_us: Some(2 * SEC),
    });
    sim.run_until_completed(400, 30 * SEC);
    println!(
        "[t={:>6} ms] {} ops committed under healthy operation",
        sim.now_us() / 1000,
        sim.stats().ops.len()
    );

    // Partition the leader + one follower away from the other three.
    let mut others = sim.members();
    others.retain(|&m| m != leader);
    let minority = [leader.0, others[0].0];
    let majority = [others[1].0, others[2].0, others[3].0];
    println!("[t={:>6} ms] partition: {{{minority:?}}} | {{{majority:?}}}", sim.now_us() / 1000);
    sim.partition(&[&minority, &majority]);

    sim.run_for(5 * SEC);
    let new_leader = sim.leader().expect("majority side re-elects");
    println!(
        "[t={:>6} ms] majority elected {new_leader}; isolated ex-leader abdicated",
        sim.now_us() / 1000
    );
    assert!(majority.contains(&new_leader.0));
    assert_ne!(new_leader, leader);

    assert!(sim.run_until_completed(1_200, 120 * SEC), "majority side must keep committing");
    println!(
        "[t={:>6} ms] {} ops committed (progress during the partition)",
        sim.now_us() / 1000,
        sim.stats().ops.len()
    );

    println!("[t={:>6} ms] healing partition", sim.now_us() / 1000);
    sim.heal();
    assert!(sim.run_until_completed(2_000, 200 * SEC), "workload must finish");
    sim.run_for(5 * SEC); // let stragglers resync

    sim.check_invariants().expect("PO atomic broadcast safety");
    sim.check_converged().expect("all nodes converge after heal");
    println!(
        "[t={:>6} ms] done: {} ops, {} messages, {} elections, safety checks green",
        sim.now_us() / 1000,
        sim.stats().ops.len(),
        sim.stats().messages_delivered,
        sim.stats().elections_started,
    );

    let lat = sim.stats().latency().expect("latency stats");
    println!(
        "latency: mean {:.1} ms, p50 {:.1} ms, p99 {:.1} ms",
        lat.mean_us / 1000.0,
        lat.p50_us as f64 / 1000.0,
        lat.p99_us as f64 / 1000.0
    );
    println!("partition_sim OK");
}
