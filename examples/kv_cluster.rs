//! A replicated coordination service: the ZooKeeper-like data tree over a
//! 3-replica Zab ensemble.
//!
//! Demonstrates the primary-backup scheme from the paper's abstract on a
//! realistic workload:
//!
//! - a **configuration registry** with versioned compare-and-set updates,
//! - a **lock/work queue** built from sequential znodes (the classic
//!   ZooKeeper recipe) — exactly the pattern that requires primary order:
//!   each `create -s` delta depends on the sequence counter produced by
//!   the one before it,
//! - reads served from a follower's local tree.
//!
//! Run with: `cargo run --example kv_cluster`

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_kv::Op;
use zab_node::{KvApp, NodeConfig, NodeEvent, Replica, Role};

fn main() {
    let book: BTreeMap<ServerId, SocketAddr> = (1..=3)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect();
    let replicas: BTreeMap<ServerId, Replica<KvApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            (id, Replica::start(cfg, KvApp::new()).expect("boot replica"))
        })
        .collect();

    let leader = wait_for_leader(&replicas).expect("no leader");
    println!("leader: {leader}");
    let submit = |op: Op| replicas[&leader].submit(op.encode());

    // --- Configuration registry -----------------------------------------
    submit(Op::create("/config", b"{}".to_vec()));
    submit(Op::create("/config/db-url", b"db://primary-1".to_vec()));
    // Versioned update: succeeds against version 0...
    submit(Op::set_if_version("/config/db-url", b"db://primary-2".to_vec(), 0));
    // ...and a stale CAS (still expecting version 0) is rejected by the
    // primary's execution — it is never broadcast.
    submit(Op::set_if_version("/config/db-url", b"db://stale".to_vec(), 0));

    // --- Work queue from sequential znodes -------------------------------
    submit(Op::create("/queue", vec![]));
    for job in ["resize-image", "send-email", "compact-log"] {
        submit(Op::create_sequential("/queue/task-", job.as_bytes().to_vec()));
    }

    // 7 deltas commit (the stale CAS produced none). Watch a follower.
    let follower = book.keys().copied().find(|&id| id != leader).expect("a follower");
    wait_deliveries(&replicas[&follower], 7);

    // Reads go to the follower's local tree — no broadcast involved.
    replicas[&follower].with_app(|app| {
        let tree = app.tree();
        let url = tree.get("/config/db-url").expect("exists");
        println!(
            "/config/db-url = {:?} (version {})",
            String::from_utf8_lossy(&url.data),
            url.version
        );
        assert_eq!(url.data, b"db://primary-2");
        assert_eq!(url.version, 1, "the stale CAS must not have applied");

        let tasks = tree.children("/queue").expect("queue exists");
        println!("queue: {tasks:?}");
        assert_eq!(
            tasks,
            vec!["task-0000000000", "task-0000000001", "task-0000000002"],
            "sequential creates must be gap-free and ordered"
        );
        for t in &tasks {
            let node = tree.get(&format!("/queue/{t}")).expect("task exists");
            println!("  {t} -> {}", String::from_utf8_lossy(&node.data));
        }
    });

    // A rejection event surfaced for the stale CAS at the leader.
    let mut saw_rejection = false;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && !saw_rejection {
        if let Ok(NodeEvent::Rejected { reason, .. }) =
            replicas[&leader].events().recv_timeout(Duration::from_millis(50))
        {
            println!("rejected as expected: {reason}");
            saw_rejection = true;
        }
    }
    assert!(saw_rejection, "stale CAS should have been rejected");
    println!("kv_cluster OK");
}

fn wait_for_leader(replicas: &BTreeMap<ServerId, Replica<KvApp>>) -> Option<ServerId> {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        for (&id, r) in replicas {
            if matches!(r.role(), Role::Leading { established: true, .. }) {
                return Some(id);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

fn wait_deliveries(replica: &Replica<KvApp>, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = 0;
    while got < want && Instant::now() < deadline {
        if let Ok(NodeEvent::Delivered(_)) =
            replica.events().recv_timeout(Duration::from_millis(100))
        {
            got += 1;
        }
    }
    assert_eq!(got, want, "timed out waiting for deliveries");
}
