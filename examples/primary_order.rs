//! The paper's motivating experiment (its Figure-1 narrative), live.
//!
//! Runs the same shape of history twice:
//!
//! 1. **Naive Multi-Paxos** with multiple outstanding proposals: primary 1
//!    pipelines deltas, some `Accept`s are lost, the primary crashes, and
//!    primary 2 takes over. The prepare quorum hands primary 2 a *suffix
//!    with holes* of primary 1's stream; it fills the gap with its own
//!    value, and slot-order delivery violates primary order. We then apply
//!    the delivered sequence as KV deltas to show the actual corruption.
//!
//! 2. **Zab** under a comparable fault schedule in the deterministic
//!    simulator: leader crash mid-pipeline with unflushed writes; the
//!    safety checker verifies primary order holds, by construction.
//!
//! Run with: `cargo run --example primary_order`

use zab_baselines::harness::{run_scenario, Scenario};
use zab_baselines::po::check_primary_order;
use zab_kv::{DataTree, Delta};
use zab_simnet::{ClosedLoopSpec, SimBuilder};

fn main() {
    multipaxos_side();
    zab_side();
    println!("\nprimary_order OK");
}

fn multipaxos_side() {
    println!("=== Naive Multi-Paxos (window = 8) ===");
    // Search seeds for a violating run — with 40% accept loss and a crash
    // they are common.
    let mut found = None;
    for seed in 0..500 {
        let outcome = run_scenario(&Scenario {
            acceptors: 3,
            window: 8,
            ops_before_crash: 6,
            crash_primary: true,
            ops_after_takeover: 3,
            accept_drop_percent: 40,
            seed,
        });
        if let Err(violation) = check_primary_order(&outcome.delivered) {
            found = Some((seed, outcome, violation));
            break;
        }
    }
    let (seed, outcome, violation) = found.expect("a violating seed exists");
    println!("seed {seed} delivered (origin.seq per slot):");
    for (i, v) in outcome.delivered.iter().enumerate() {
        println!("  slot {:>2}: primary {} seq {}", i + 1, v.origin, v.seq);
    }
    println!("violation: {violation}");

    // Now show what a *local* gap does to real incremental state. Model
    // each primary's stream as a dependency chain of nested znodes: its
    // k-th delta creates a child of the node its (k-1)-th delta created.
    // Search for a seed whose delivered sequence has a local gap and
    // replay it on a backup tree.
    // A delivered sequence where some origin's seq k appears while seq
    // k-1 never does (its slot was filled by the new primary).
    let has_local_gap = |delivered: &[zab_baselines::multipaxos::TaggedValue]| {
        let mut per_origin: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for v in delivered {
            per_origin.entry(v.origin).or_default().push(v.seq);
        }
        per_origin.values().any(|seqs| {
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            sorted.first() != Some(&1) || sorted.windows(2).any(|w| w[1] != w[0] + 1)
        })
    };
    let mut demo = None;
    'outer: for seed in 0..2_000 {
        let outcome = run_scenario(&Scenario {
            acceptors: 3,
            window: 8,
            ops_before_crash: 6,
            crash_primary: true,
            ops_after_takeover: 3,
            accept_drop_percent: 40,
            seed,
        });
        if has_local_gap(&outcome.delivered) {
            demo = Some((seed, outcome));
            break 'outer;
        }
    }
    let (gap_seed, gap_outcome) = demo.expect("a local-gap seed exists among 2000");
    println!("\nseed {gap_seed} has a local gap; replaying its deltas on a backup:");
    let mut tree = DataTree::new();
    let mut corrupted = false;
    for (i, v) in gap_outcome.delivered.iter().enumerate() {
        // Primary `o`'s delta k was computed assuming deltas 1..k-1 of `o`
        // applied: it creates a child nested under the (k-1)-chain.
        let path = format!("/p{}{}", v.origin, "/n".repeat(v.seq as usize - 1));
        let delta = Delta::CreateNode { path, data: vec![], parent_cversion: 1 };
        if let Err(e) = tree.apply(&delta) {
            println!(
                "  delta {} (primary {} seq {}): BACKUP CORRUPTED: {e}",
                i + 1,
                v.origin,
                v.seq
            );
            corrupted = true;
            break;
        }
        println!("  delta {} (primary {} seq {}): ok", i + 1, v.origin, v.seq);
    }
    assert!(corrupted, "a local primary-order gap must break the delta chain");

    // The contrast the paper draws: a single outstanding proposal avoids
    // the phenomenon entirely (at a large throughput cost — see the
    // fig_outstanding benchmark).
    let mut violations_w1 = 0;
    for seed in 0..500 {
        let outcome = run_scenario(&Scenario {
            acceptors: 3,
            window: 1,
            ops_before_crash: 6,
            crash_primary: true,
            ops_after_takeover: 3,
            accept_drop_percent: 40,
            seed,
        });
        if check_primary_order(&outcome.delivered).is_err() {
            violations_w1 += 1;
        }
    }
    println!(
        "window = 1: {violations_w1} violations in 500 seeds (stop-and-wait is safe but slow)"
    );
    assert_eq!(violations_w1, 0);
}

fn zab_side() {
    println!("\n=== Zab (window = 1000, leader crashes, unflushed writes lost) ===");
    let mut checked = 0;
    for seed in 0..10 {
        let mut sim = SimBuilder::new(3)
            .seed(seed)
            .timeouts_ms(200, 200, 25)
            .flush_latency_us(10_000) // slow disk: plenty of unflushed state
            .build();
        let leader = sim.run_until_leader(10_000_000).expect("leader");
        sim.install_closed_loop(ClosedLoopSpec {
            clients: 8,
            payload_size: 64,
            total_ops: 300,
            retry_delay_us: 5_000,
            op_timeout_us: Some(2_000_000),
        });
        sim.run_until_completed(100, 30_000_000);
        sim.crash(leader);
        sim.run_for(3_000_000);
        sim.restart(leader);
        sim.run_until_completed(300, 120_000_000);
        sim.check_invariants().unwrap_or_else(|e| panic!("Zab violated PO at seed {seed}: {e}"));
        checked += 1;
    }
    println!("{checked} crash-recovery schedules checked: primary order intact in all");
}
